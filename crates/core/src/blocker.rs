//! DIAL's blocker: a committee of lightweight embedding heads over the
//! frozen matcher-tuned trunk, plus Index-By-Committee retrieval (§3.2).
//!
//! Each member `k` owns a fixed random binary mask `M_k` and an affine map
//! `U_k`, producing `E_k(x) = tanh(U_k (M_k ⊙ E(x), 1))` (Eq. 7). Members
//! are (re-)initialized and retrained from scratch every round on the
//! *frozen* trunk embeddings — only the `U_k` parameters move.
//!
//! Training data and objective are configurable to reproduce the paper's
//! ablations: random vs labeled negatives (§3.2.2, Table 4) and
//! contrastive vs triplet vs classification objectives (§3.2.3, Table 5).

use crate::config::{BlockerObjective, DialConfig, NegativeSource};
use crate::encode::ListEmbeddings;
use dial_datasets::LabeledPair;
use dial_tensor::optim::AdamW;
use dial_tensor::{init, Graph, Matrix, ParamId, ParamStore, Var};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameter-name prefix of all committee parameters.
pub const COMMITTEE_PREFIX: &str = "committee.";

/// Per-coordinate standardization fitted on the current round's trunk
/// embeddings. Mean-pooled layer-norm embeddings concentrate in a tiny
/// ball around the corpus centroid; standardizing spreads the informative
/// directions so the committee's tanh layer and the contrastive softmax
/// operate at unit scale. (KNN over raw embeddings is translation
/// invariant, so this only affects the learned blocker.)
#[derive(Debug, Clone)]
pub struct Normalization {
    mean: Vec<f32>,
    inv_std: Vec<f32>,
}

impl Normalization {
    /// Identity normalization (used before the first fit).
    pub fn identity(dim: usize) -> Self {
        Normalization { mean: vec![0.0; dim], inv_std: vec![1.0; dim] }
    }

    /// Fit on the union of the given embedding lists.
    pub fn fit(lists: &[&ListEmbeddings]) -> Self {
        let dim = lists[0].dim;
        let n: usize = lists.iter().map(|l| l.len()).sum();
        assert!(n > 0, "cannot fit normalization on zero vectors");
        let mut mean = vec![0.0f64; dim];
        for l in lists {
            for row in l.data.chunks(dim) {
                for (m, &v) in mean.iter_mut().zip(row) {
                    *m += v as f64;
                }
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0f64; dim];
        for l in lists {
            for row in l.data.chunks(dim) {
                for ((vv, &v), m) in var.iter_mut().zip(row).zip(&mean) {
                    *vv += (v as f64 - m).powi(2);
                }
            }
        }
        let inv_std = var.iter().map(|v| (1.0 / ((v / n as f64).sqrt() + 1e-6)) as f32).collect();
        Normalization { mean: mean.into_iter().map(|m| m as f32).collect(), inv_std }
    }

    /// Standardize one row.
    pub fn apply(&self, row: &[f32]) -> Vec<f32> {
        row.iter().zip(&self.mean).zip(&self.inv_std).map(|((&v, m), s)| (v - m) * s).collect()
    }
}

/// One committee member's parameters and mask.
#[derive(Debug, Clone)]
pub struct CommitteeMember {
    mask: Vec<f32>,
    w: ParamId,
    b: ParamId,
    /// Classifier head used only by the Classification objective ablation.
    clf_w: ParamId,
    clf_b: ParamId,
}

impl CommitteeMember {
    /// Transform one trunk embedding without building a graph (inference).
    pub fn embed(&self, store: &ParamStore, e: &[f32]) -> Vec<f32> {
        let w = store.value(self.w);
        let b = store.value(self.b);
        let d_out = w.cols();
        let mut out = vec![0.0f32; d_out];
        for (i, (&x, &m)) in e.iter().zip(&self.mask).enumerate() {
            let xm = x * m;
            if xm == 0.0 {
                continue;
            }
            for (o, &wv) in out.iter_mut().zip(w.row(i)) {
                *o += xm * wv;
            }
        }
        for (o, &bv) in out.iter_mut().zip(b.row(0)) {
            *o = (*o + bv).tanh();
        }
        out
    }

    /// Graph-mode transform of a batch of trunk embeddings `[n, d]`.
    fn embed_graph(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let n = g.value(x).rows();
        let mask_row = g.input(Matrix::row_vector(self.mask.clone()));
        let mask = g.repeat_row(mask_row, n);
        let masked = g.mul(x, mask);
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let h = g.linear(masked, w, b);
        g.tanh(h)
    }
}

/// The blocker committee.
#[derive(Debug, Clone)]
pub struct Committee {
    members: Vec<CommitteeMember>,
    dim: usize,
    mask_p: f32,
    norm: Normalization,
}

impl Committee {
    /// Register `n` members' parameters (once per system; values and masks
    /// are re-randomized each round via [`Committee::reinit`]).
    pub fn new(store: &mut ParamStore, n: usize, dim: usize, mask_p: f32, seed: u64) -> Self {
        assert!(n >= 1 && dim >= 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb10c);
        let members = (0..n)
            .map(|k| CommitteeMember {
                mask: sample_mask(dim, mask_p, &mut rng),
                // Near-identity start: each member begins as a "minor
                // variation" of the base embedding (§3.2.1), which keeps
                // the pre-trained space's recall and lets the contrastive
                // objective refine rather than rebuild it.
                w: store
                    .add(format!("{COMMITTEE_PREFIX}{k}.w"), near_identity(dim, 0.05, &mut rng)),
                b: store.add(format!("{COMMITTEE_PREFIX}{k}.b"), Matrix::zeros(1, dim)),
                clf_w: store.add(
                    format!("{COMMITTEE_PREFIX}{k}.clf_w"),
                    init::xavier_uniform(3 * dim, 1, &mut rng),
                ),
                clf_b: store.add(format!("{COMMITTEE_PREFIX}{k}.clf_b"), Matrix::zeros(1, 1)),
            })
            .collect();
        Committee { members, dim, mask_p, norm: Normalization::identity(dim) }
    }

    pub fn size(&self) -> usize {
        self.members.len()
    }

    pub fn members(&self) -> &[CommitteeMember] {
        &self.members
    }

    /// Re-randomize masks and parameters (start of each AL round: the
    /// committee, like the matcher, is not warm-started).
    pub fn reinit(&mut self, store: &mut ParamStore, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb10c2);
        for m in &mut self.members {
            m.mask = sample_mask(self.dim, self.mask_p, &mut rng);
            *store.value_mut(m.w) = near_identity(self.dim, 0.05, &mut rng);
            *store.value_mut(m.b) = Matrix::zeros(1, self.dim);
            *store.value_mut(m.clf_w) = init::xavier_uniform(3 * self.dim, 1, &mut rng);
            *store.value_mut(m.clf_b) = Matrix::zeros(1, 1);
        }
    }

    /// Train every member on the labeled duplicates with the configured
    /// negative source and objective. `emb_r` / `emb_s` are the frozen
    /// trunk embeddings of the two lists. Returns the mean final-epoch loss
    /// across members.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        &mut self,
        store: &mut ParamStore,
        emb_r: &ListEmbeddings,
        emb_s: &ListEmbeddings,
        labeled: &[LabeledPair],
        cfg: &DialConfig,
        round: usize,
    ) -> f32 {
        let positives: Vec<&LabeledPair> = labeled.iter().filter(|p| p.label).collect();
        assert!(!positives.is_empty(), "committee needs at least one labeled duplicate");
        let negatives: Vec<&LabeledPair> = labeled.iter().filter(|p| !p.label).collect();
        self.norm = Normalization::fit(&[emb_r, emb_s]);

        let mut total = 0.0;
        for (k, member) in self.members.iter().enumerate() {
            let mut rng =
                StdRng::seed_from_u64(cfg.seed ^ ((round as u64) << 32) ^ ((k as u64) << 8));
            total += train_member(
                member, store, &self.norm, emb_r, emb_s, &positives, &negatives, cfg, &mut rng,
            );
        }
        total / self.members.len() as f32
    }

    /// Committee embeddings of a whole list: one packed `[n, d]` buffer per
    /// member.
    pub fn embed_list(&self, store: &ParamStore, emb: &ListEmbeddings) -> Vec<Vec<f32>> {
        use rayon::prelude::*;
        self.members
            .iter()
            .map(|m| {
                (0..emb.len() as u32)
                    .into_par_iter()
                    .map(|id| m.embed(store, &self.norm.apply(emb.row(id))))
                    .flatten_iter()
                    .collect()
            })
            .collect()
    }

    /// Fitted normalization of the last training round.
    pub fn normalization(&self) -> &Normalization {
        &self.norm
    }
}

/// Identity plus Gaussian noise.
fn near_identity(d: usize, noise: f32, rng: &mut StdRng) -> Matrix {
    let mut m = init::normal(d, d, noise, rng);
    for i in 0..d {
        let v = m.get(i, i) + 1.0;
        m.set(i, i, v);
    }
    m
}

fn sample_mask(dim: usize, keep_p: f32, rng: &mut StdRng) -> Vec<f32> {
    loop {
        let mask: Vec<f32> =
            (0..dim).map(|_| if rng.gen::<f32>() < keep_p { 1.0 } else { 0.0 }).collect();
        // Guard against the (unlikely) all-zero mask.
        if mask.iter().any(|&m| m != 0.0) {
            return mask;
        }
    }
}

/// Gather rows `ids` of a list embedding into a standardized input matrix.
fn gather_rows(emb: &ListEmbeddings, norm: &Normalization, ids: &[u32]) -> Matrix {
    let mut m = Matrix::zeros(ids.len(), emb.dim);
    for (i, &id) in ids.iter().enumerate() {
        m.row_mut(i).copy_from_slice(&norm.apply(emb.row(id)));
    }
    m
}

#[allow(clippy::too_many_arguments)]
fn train_member(
    member: &CommitteeMember,
    store: &mut ParamStore,
    norm: &Normalization,
    emb_r: &ListEmbeddings,
    emb_s: &ListEmbeddings,
    positives: &[&LabeledPair],
    negatives: &[&LabeledPair],
    cfg: &DialConfig,
    rng: &mut StdRng,
) -> f32 {
    let mut opt = AdamW::new(store, cfg.lr_committee);
    let mut order: Vec<usize> = (0..positives.len()).collect();
    let mut last_loss = 0.0;
    for _epoch in 0..cfg.blocker_epochs {
        order.shuffle(rng);
        let mut loss_sum = 0.0f64;
        let mut n = 0usize;
        for batch in order.chunks(cfg.batch_size) {
            let pos_r: Vec<u32> = batch.iter().map(|&i| positives[i].r).collect();
            let pos_s: Vec<u32> = batch.iter().map(|&i| positives[i].s).collect();
            let b = batch.len();

            // Negative pairs per §3.2.2: random records from each list
            // (each member shuffles independently) or the labeled hard
            // negatives, per the ablation switch.
            let (neg_r, neg_s): (Vec<u32>, Vec<u32>) = match cfg.negatives {
                NegativeSource::Random => {
                    let nr: Vec<u32> =
                        (0..b).map(|_| rng.gen_range(0..emb_r.len() as u32)).collect();
                    let ns: Vec<u32> =
                        (0..b).map(|_| rng.gen_range(0..emb_s.len() as u32)).collect();
                    (nr, ns)
                }
                NegativeSource::Labeled => {
                    if negatives.is_empty() {
                        // Degenerate fallback: random negatives.
                        let nr: Vec<u32> =
                            (0..b).map(|_| rng.gen_range(0..emb_r.len() as u32)).collect();
                        let ns: Vec<u32> =
                            (0..b).map(|_| rng.gen_range(0..emb_s.len() as u32)).collect();
                        (nr, ns)
                    } else {
                        let picks: Vec<&LabeledPair> =
                            (0..b).map(|_| negatives[rng.gen_range(0..negatives.len())]).collect();
                        (picks.iter().map(|p| p.r).collect(), picks.iter().map(|p| p.s).collect())
                    }
                }
            };

            let mut g = Graph::new();
            let pr_in = g.input(gather_rows(emb_r, norm, &pos_r));
            let ps_in = g.input(gather_rows(emb_s, norm, &pos_s));
            let nr_in = g.input(gather_rows(emb_r, norm, &neg_r));
            let ns_in = g.input(gather_rows(emb_s, norm, &neg_s));
            let epr = member.embed_graph(&mut g, store, pr_in);
            let eps_ = member.embed_graph(&mut g, store, ps_in);
            let enr = member.embed_graph(&mut g, store, nr_in);
            let ens = member.embed_graph(&mut g, store, ns_in);

            let loss = match cfg.objective {
                BlockerObjective::Contrastive => contrastive_loss(&mut g, epr, eps_, enr, ens, b),
                BlockerObjective::Triplet => triplet_loss(&mut g, epr, eps_, enr, ens),
                BlockerObjective::Classification => {
                    classification_loss(&mut g, store, member, epr, eps_, enr, ens)
                }
            };
            loss_sum += g.value(loss).item() as f64 * b as f64;
            n += b;
            g.backward(loss, store);
            opt.step(store);
        }
        last_loss = (loss_sum / n.max(1) as f64) as f32;
    }
    last_loss
}

/// Eq. 8: for each positive `(r_p, s_p)`, contrast against the `b` random
/// pairs `(r_i, s_p)`, `(r_p, s_i)` and `(r_i, s_i)` under similarity
/// `s(u, v) = exp(-||u - v||²)`.
fn contrastive_loss(g: &mut Graph, epr: Var, eps_: Var, enr: Var, ens: Var, b: usize) -> Var {
    let n_pos = g.value(epr).rows();
    let pos = g.row_sq_dists(epr, eps_); // [p, 1]
    let d_rp_si = g.cross_sq_dists(epr, ens); // [p, b]
    let d_ri_sp_t = g.cross_sq_dists(enr, eps_); // [b, p]
    let d_ri_sp = g.transpose(d_ri_sp_t); // [p, b]
    let d_ri_si = g.row_sq_dists(enr, ens); // [b, 1]
    let d_ri_si_row = g.transpose(d_ri_si); // [1, b]
    let d_ri_si_rep = g.repeat_row(d_ri_si_row, n_pos); // [p, b]
    let all = g.concat_cols(&[pos, d_rp_si, d_ri_sp, d_ri_si_rep]);
    // Adaptive temperature: Eq. 8 uses exp(-||u-v||²) directly, which
    // assumes unit-scale distances. Mean-pooled layer-norm embeddings live
    // at a much smaller (and training-dependent) scale, so we divide by
    // the batch-mean distance — computed as a detached constant — to keep
    // the softmax in its sensitive range at every scale. This is the
    // paper's "scaled cosine similarity is another good choice" remark
    // made scale-free.
    let tau = {
        let v = g.value(all);
        (v.sum() / v.len() as f32).max(1e-6)
    };
    let z = g.scale(all, -1.0 / tau);
    let lse = g.logsumexp_rows(z);
    let z_pos = g.slice_cols(z, 0, 1);
    let per = g.sub(lse, z_pos);
    debug_assert_eq!(g.value(per).shape(), (n_pos, 1));
    let _ = b;
    g.mean(per)
}

/// Triplet loss with Euclidean distance and margin 1 (§4.6.2), anchored at
/// both sides of each positive, against the aligned random pair.
fn triplet_loss(g: &mut Graph, epr: Var, eps_: Var, enr: Var, ens: Var) -> Var {
    let n_pos = g.value(epr).rows();
    let pos_sq = g.row_sq_dists(epr, eps_);
    let pos_d = g.sqrt_eps(pos_sq, 1e-9);
    // Align random negatives with positives by cycling rows.
    let (enr_al, ens_al) = (cycle_rows(g, enr, n_pos), cycle_rows(g, ens, n_pos));
    let n1_sq = g.row_sq_dists(epr, ens_al);
    let n1_d = g.sqrt_eps(n1_sq, 1e-9);
    let n2_sq = g.row_sq_dists(enr_al, eps_);
    let n2_d = g.sqrt_eps(n2_sq, 1e-9);
    // Margin scaled to the batch's negative-distance scale (the paper's
    // margin of 1 presumes RoBERTa-scale distances).
    let margin_v = {
        let v = g.value(n1_d);
        0.5 * v.sum() / v.rows() as f32
    };
    let margin = g.input(Matrix::full(n_pos, 1, margin_v));
    let t1 = g.sub(pos_d, n1_d);
    let t1 = g.add(t1, margin);
    let t1 = g.relu(t1);
    let margin2 = g.input(Matrix::full(n_pos, 1, margin_v));
    let t2 = g.sub(pos_d, n2_d);
    let t2 = g.add(t2, margin2);
    let t2 = g.relu(t2);
    let total = g.add(t1, t2);
    g.mean(total)
}

/// SentenceBERT-style binary classification on `(u, v, |u - v|)`.
fn classification_loss(
    g: &mut Graph,
    store: &ParamStore,
    member: &CommitteeMember,
    epr: Var,
    eps_: Var,
    enr: Var,
    ens: Var,
) -> Var {
    let n_pos = g.value(epr).rows();
    let n_neg = g.value(enr).rows();
    let pos_feat = pair_features(g, epr, eps_);
    let neg_feat = pair_features(g, enr, ens);
    let feats = g.concat_rows(&[pos_feat, neg_feat]);
    let w = g.param(store, member.clf_w);
    let b = g.param(store, member.clf_b);
    let z = g.linear(feats, w, b);
    let mut targets = vec![1.0; n_pos];
    targets.extend(std::iter::repeat_n(0.0, n_neg));
    g.bce_with_logits(z, &targets)
}

fn pair_features(g: &mut Graph, u: Var, v: Var) -> Var {
    let d = g.sub(u, v);
    let d = g.abs(d);
    g.concat_cols(&[u, v, d])
}

/// Repeat/trim the rows of `x` to exactly `n` rows.
fn cycle_rows(g: &mut Graph, x: Var, n: usize) -> Var {
    let have = g.value(x).rows();
    if have == n {
        return x;
    }
    if have > n {
        return g.slice_rows(x, 0, n);
    }
    let mut parts = Vec::new();
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(have);
        parts.push(g.slice_rows(x, 0, take));
        remaining -= take;
    }
    g.concat_rows(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DialConfig;

    /// Trunk embeddings where s_i is a *feature-rotated* copy of r_i: raw
    /// L2 retrieval fails, but a learned linear map can align the lists.
    fn toy_embeddings(n: usize, dim: usize) -> (ListEmbeddings, ListEmbeddings) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let mut r = Vec::new();
        let mut s = Vec::new();
        for _ in 0..n {
            let row: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            r.extend_from_slice(&row);
            for k in 0..dim {
                s.push(row[(k + 3) % dim] + 0.02); // rotated features
            }
        }
        (ListEmbeddings { dim, data: r }, ListEmbeddings { dim, data: s })
    }

    fn toy_cfg(objective: BlockerObjective, negatives: NegativeSource) -> DialConfig {
        DialConfig {
            blocker_epochs: 30,
            batch_size: 8,
            lr_head: 1e-2,
            objective,
            negatives,
            ..DialConfig::smoke()
        }
    }

    fn labeled_pairs(n: usize) -> Vec<LabeledPair> {
        (0..n as u32 / 2)
            .map(|i| LabeledPair::new(i, i, true))
            .chain((0..n as u32 / 2).map(|i| LabeledPair::new(i, (i + 5) % (n as u32), false)))
            .collect()
    }

    #[test]
    fn committee_members_have_distinct_masks() {
        let mut store = ParamStore::new();
        let c = Committee::new(&mut store, 3, 32, 0.5, 0);
        assert_ne!(c.members()[0].mask, c.members()[1].mask);
        assert_ne!(c.members()[1].mask, c.members()[2].mask);
    }

    #[test]
    fn reinit_changes_masks_and_weights() {
        let mut store = ParamStore::new();
        let mut c = Committee::new(&mut store, 2, 16, 0.5, 0);
        let w_before = store.value(c.members()[0].w).clone();
        let m_before = c.members()[0].mask.clone();
        c.reinit(&mut store, 99);
        assert_ne!(store.value(c.members()[0].w), &w_before);
        assert_ne!(c.members()[0].mask, m_before);
    }

    #[test]
    fn embed_matches_graph_path() {
        let mut store = ParamStore::new();
        let c = Committee::new(&mut store, 1, 8, 0.5, 3);
        let e: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let fast = c.members()[0].embed(&store, &e);
        let mut g = Graph::new();
        let x = g.input(Matrix::row_vector(e));
        let out = c.members()[0].embed_graph(&mut g, &store, x);
        let slow = g.value(out).as_slice();
        for (a, b) in fast.iter().zip(slow) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    fn recall_at_1(
        store: &ParamStore,
        c: &Committee,
        er: &ListEmbeddings,
        es: &ListEmbeddings,
    ) -> f32 {
        // For each s, is its true partner r the nearest under member 0?
        let views_r = c.embed_list(store, er);
        let views_s = c.embed_list(store, es);
        let (vr, vs) = (&views_r[0], &views_s[0]);
        let d = er.dim;
        let n = er.len();
        let mut hits = 0;
        for si in 0..n {
            let es_v = &vs[si * d..(si + 1) * d];
            let mut best = (usize::MAX, f32::INFINITY);
            for ri in 0..n {
                let er_v = &vr[ri * d..(ri + 1) * d];
                let dd = dial_ann::sq_l2(es_v, er_v);
                if dd < best.1 {
                    best = (ri, dd);
                }
            }
            if best.0 == si {
                hits += 1;
            }
        }
        hits as f32 / n as f32
    }

    #[test]
    fn contrastive_training_improves_duplicate_retrieval() {
        let (er, es) = toy_embeddings(48, 16);
        let mut store = ParamStore::new();
        let mut c = Committee::new(&mut store, 1, 16, 1.0, 1);
        let cfg = DialConfig {
            blocker_epochs: 150,
            ..toy_cfg(BlockerObjective::Contrastive, NegativeSource::Random)
        };
        let before = recall_at_1(&store, &c, &er, &es);
        let labeled = labeled_pairs(48);
        let loss = c.train(&mut store, &er, &es, &labeled, &cfg, 0);
        assert!(loss.is_finite());
        let rec = recall_at_1(&store, &c, &er, &es);
        assert!(
            rec > before + 0.2 && rec > 0.25,
            "recall@1 should improve: before {before}, after {rec}"
        );
    }

    #[test]
    fn all_objectives_produce_finite_loss() {
        let (er, es) = toy_embeddings(16, 8);
        let labeled = labeled_pairs(16);
        for obj in [
            BlockerObjective::Contrastive,
            BlockerObjective::Triplet,
            BlockerObjective::Classification,
        ] {
            let mut store = ParamStore::new();
            let mut c = Committee::new(&mut store, 2, 8, 0.6, 2);
            let cfg = DialConfig { blocker_epochs: 3, ..toy_cfg(obj, NegativeSource::Random) };
            let loss = c.train(&mut store, &er, &es, &labeled, &cfg, 0);
            assert!(loss.is_finite(), "{obj:?} loss not finite");
        }
    }

    #[test]
    fn labeled_negative_source_uses_negatives() {
        let (er, es) = toy_embeddings(16, 8);
        let labeled = labeled_pairs(16);
        let mut store = ParamStore::new();
        let mut c = Committee::new(&mut store, 1, 8, 0.6, 2);
        let cfg = DialConfig {
            blocker_epochs: 3,
            ..toy_cfg(BlockerObjective::Contrastive, NegativeSource::Labeled)
        };
        let loss = c.train(&mut store, &er, &es, &labeled, &cfg, 0);
        assert!(loss.is_finite());
    }

    #[test]
    fn embed_list_shapes() {
        let (er, _) = toy_embeddings(10, 8);
        let mut store = ParamStore::new();
        let c = Committee::new(&mut store, 3, 8, 0.5, 0);
        let views = c.embed_list(&store, &er);
        assert_eq!(views.len(), 3);
        for v in &views {
            assert_eq!(v.len(), 10 * 8);
        }
    }
}
