//! The simulated human labeler.
//!
//! Answers duplicate/non-duplicate queries from the dataset's gold list and
//! counts how many labels have been spent, enforcing the labeling budget
//! accounting the paper reports on the x-axes of Figures 4–7.

use dial_datasets::{EmDataset, LabeledPair};

/// Budget-tracking oracle over a gold duplicate list.
#[derive(Debug)]
pub struct Oracle<'d> {
    data: &'d EmDataset,
    labels_spent: usize,
}

impl<'d> Oracle<'d> {
    pub fn new(data: &'d EmDataset) -> Self {
        Oracle { data, labels_spent: 0 }
    }

    /// Label one pair, spending one unit of budget.
    pub fn label(&mut self, r: u32, s: u32) -> LabeledPair {
        self.labels_spent += 1;
        LabeledPair::new(r, s, self.data.is_dup(r, s))
    }

    /// Label a batch of pairs.
    pub fn label_batch(&mut self, pairs: &[(u32, u32)]) -> Vec<LabeledPair> {
        pairs.iter().map(|&(r, s)| self.label(r, s)).collect()
    }

    /// Labels spent so far (excludes the free seed set, matching the
    /// paper's accounting which counts seed labels separately in `|T|`).
    pub fn labels_spent(&self) -> usize {
        self.labels_spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dial_datasets::{Benchmark, ScaleProfile};

    #[test]
    fn labels_match_gold_and_budget_counts() {
        let data = Benchmark::AbtBuy.generate(ScaleProfile::Smoke, 1);
        let mut oracle = Oracle::new(&data);
        let &(r, s) = &data.dups()[0];
        assert!(oracle.label(r, s).label);
        assert!(
            !oracle.label(r, (s + 1) % data.s.len() as u32).label
                || data.is_dup(r, (s + 1) % data.s.len() as u32)
        );
        assert_eq!(oracle.labels_spent(), 2);
    }

    #[test]
    fn batch_labeling() {
        let data = Benchmark::AbtBuy.generate(ScaleProfile::Smoke, 1);
        let mut oracle = Oracle::new(&data);
        let pairs: Vec<(u32, u32)> = data.dups().iter().take(5).copied().collect();
        let labeled = oracle.label_batch(&pairs);
        assert_eq!(labeled.len(), 5);
        assert!(labeled.iter().all(|p| p.label));
        assert_eq!(oracle.labels_spent(), 5);
    }
}
