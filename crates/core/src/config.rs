//! DIAL system configuration.

use dial_tplm::TplmConfig;

/// Which embeddings feed the nearest-neighbour blocker (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingStrategy {
    /// DIAL's Index-By-Committee over contrastively trained committee
    /// embeddings (§3.2).
    Dial,
    /// Single-mode embeddings of the *pre-trained* TPLM, indexed once and
    /// never updated.
    PairedFixed,
    /// Single-mode embeddings of the matcher-fine-tuned TPLM, re-indexed
    /// every round.
    PairedAdapt,
    /// SentenceBERT-style blocking (DITTO's "advanced blocking"): a
    /// `(u, v, |u-v|)` classification head trained on the labeled pairs;
    /// its input projection defines the indexed embeddings.
    SentenceBert,
    /// Fixed hand-crafted rule candidates (no embedding index).
    Rules,
}

/// Training data for the blocker's negative pairs (§3.2.2, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NegativeSource {
    /// Random records from `R` and `S` — DIAL's choice.
    #[default]
    Random,
    /// The hard actively-labeled negatives `T − Tp`.
    Labeled,
}

/// Blocker training objective (§3.2.3, Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockerObjective {
    /// InfoNCE-style contrastive loss (Eq. 8) — DIAL's choice.
    #[default]
    Contrastive,
    /// Margin-based triplet loss (Tracz et al. 2020), margin 1, no hard
    /// negative mining.
    Triplet,
    /// Binary cross-entropy separating duplicates from non-duplicates
    /// (SentenceBERT-style).
    Classification,
}

/// Example-selection strategy (§2.3, §4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Entropy of the matcher probability (Eq. 4) — the default.
    #[default]
    Uncertainty,
    /// Uniformly random from the candidate set.
    Random,
    /// Most similar pairs first (smallest embedding distance).
    Greedy,
    /// Soft query-by-committee disagreement over a bootstrap committee of
    /// matcher heads.
    Qbc,
    /// High-confidence sampling with partition, querying only the
    /// low-confidence halves.
    Partition2,
    /// Partition variant querying all four subsets.
    Partition4,
    /// BADGE: k-means++ on hallucinated gradient embeddings.
    Badge,
}

/// Candidate-set size policy (§4.6.3, Table 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CandSize {
    /// `3 · |dups|` (uses gold cardinality; ablation only).
    Small,
    /// The per-dataset default: `3 · |S|` (or `20 · |S|` for Abt-Buy).
    Medium,
    /// `5 · |S|` (or `20 · |S|` for Abt-Buy — "Large" in Table 6).
    Large,
    /// Explicit multiple of `|S|`.
    MultipleOfS(f64),
}

impl CandSize {
    /// Resolve to a pair count.
    pub fn resolve(self, s_len: usize, n_dups: usize, abt_buy_like: bool) -> usize {
        let n = match self {
            CandSize::Small => 3 * n_dups,
            CandSize::Medium => {
                if abt_buy_like {
                    20 * s_len
                } else {
                    3 * s_len
                }
            }
            CandSize::Large => {
                if abt_buy_like {
                    20 * s_len
                } else {
                    5 * s_len
                }
            }
            CandSize::MultipleOfS(m) => (m * s_len as f64).ceil() as usize,
        };
        n.max(1)
    }
}

/// Full configuration of one active-learning run.
#[derive(Debug, Clone)]
pub struct DialConfig {
    pub tplm: TplmConfig,
    /// Active-learning rounds (paper: 10).
    pub rounds: usize,
    /// Labeling budget per round (paper: 128).
    pub budget: usize,
    /// Initial seed positives / negatives (paper: 64 / 64).
    pub seed_pos: usize,
    pub seed_neg: usize,
    /// Matcher fine-tuning epochs per round (paper: 20).
    pub matcher_epochs: usize,
    /// Committee training epochs per round (paper: 200).
    pub blocker_epochs: usize,
    /// Mini-batch size (paper: 16).
    pub batch_size: usize,
    /// Trunk learning rate. The paper uses 3e-5 for RoBERTa; the mini
    /// transformer trains from a much shallower pre-trained prior and needs
    /// a proportionally larger step (see DESIGN.md §5).
    pub lr_trunk: f32,
    /// Matcher-head learning rate (paper: 1e-3).
    pub lr_head: f32,
    /// Committee / SBERT-blocker learning rate.
    pub lr_committee: f32,
    /// Committee size `N` (paper: 3).
    pub committee: usize,
    /// Committee mask keep-probability `p` (paper: 0.5).
    pub mask_p: f32,
    /// Neighbours retrieved per probe `k` (paper: 3; 20 for Abt-Buy).
    pub k: usize,
    /// Candidate-set size policy.
    pub cand_size: CandSize,
    /// Treat the dataset as Abt-Buy-like (small `|S|`: larger `cand`, `k`).
    pub abt_buy_like: bool,
    pub blocking: BlockingStrategy,
    pub negatives: NegativeSource,
    pub objective: BlockerObjective,
    pub selection: SelectionStrategy,
    /// Freeze the TPLM trunk during matcher training (the paper does this
    /// for the multilingual dataset, §4.5).
    pub freeze_trunk: bool,
    /// Skip-gram pre-training passes (the "pre-trained" prior; 0 disables).
    pub pretrain_epochs: usize,
    /// Base RNG seed for the run.
    pub seed: u64,
}

impl Default for DialConfig {
    fn default() -> Self {
        DialConfig {
            tplm: TplmConfig::default(),
            rounds: 6,
            budget: 32,
            seed_pos: 24,
            seed_neg: 24,
            matcher_epochs: 40,
            blocker_epochs: 10,
            batch_size: 16,
            lr_trunk: 3e-3,
            lr_head: 3e-2,
            lr_committee: 1e-3,
            committee: 3,
            mask_p: 0.5,
            k: 3,
            cand_size: CandSize::Medium,
            abt_buy_like: false,
            blocking: BlockingStrategy::Dial,
            negatives: NegativeSource::Random,
            objective: BlockerObjective::Contrastive,
            selection: SelectionStrategy::Uncertainty,
            freeze_trunk: false,
            pretrain_epochs: 2,
            seed: 0,
        }
    }
}

impl DialConfig {
    /// A configuration small enough for integration tests: one round, tiny
    /// model, few epochs.
    pub fn smoke() -> Self {
        DialConfig {
            tplm: TplmConfig {
                vocab_size: 2048 + 5,
                d_model: 32,
                n_layers: 1,
                n_heads: 2,
                d_ff: 64,
                max_len: 48,
                dropout: 0.0,
                seed: 0,
            },
            rounds: 2,
            budget: 8,
            seed_pos: 8,
            seed_neg: 8,
            matcher_epochs: 20,
            blocker_epochs: 8,
            batch_size: 8,
            committee: 2,
            pretrain_epochs: 1,
            ..Default::default()
        }
    }

    /// Validate cross-field invariants.
    pub fn validate(&self) {
        self.tplm.validate();
        assert!(self.rounds >= 1, "need at least one AL round");
        assert!(self.batch_size >= 2, "batch size must allow negatives");
        assert!(self.committee >= 1, "committee size must be >= 1");
        assert!((0.0..=1.0).contains(&self.mask_p), "mask_p out of range");
        assert!(self.k >= 1, "k must be >= 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        DialConfig::default().validate();
        DialConfig::smoke().validate();
    }

    #[test]
    fn cand_size_resolution() {
        assert_eq!(CandSize::Small.resolve(1000, 50, false), 150);
        assert_eq!(CandSize::Medium.resolve(1000, 50, false), 3000);
        assert_eq!(CandSize::Medium.resolve(100, 50, true), 2000);
        assert_eq!(CandSize::Large.resolve(1000, 50, false), 5000);
        assert_eq!(CandSize::MultipleOfS(0.5).resolve(1000, 50, false), 500);
    }

    #[test]
    fn cand_size_never_zero() {
        assert_eq!(CandSize::Small.resolve(0, 0, false), 1);
    }
}
