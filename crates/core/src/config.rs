//! DIAL system configuration.

use dial_ann::{HnswParams, IndexSpec, IvfParams, PqParams};
use dial_tplm::TplmConfig;
use std::path::PathBuf;

/// Which embeddings feed the nearest-neighbour blocker (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingStrategy {
    /// DIAL's Index-By-Committee over contrastively trained committee
    /// embeddings (§3.2).
    Dial,
    /// Single-mode embeddings of the *pre-trained* TPLM, indexed once and
    /// never updated.
    PairedFixed,
    /// Single-mode embeddings of the matcher-fine-tuned TPLM, re-indexed
    /// every round.
    PairedAdapt,
    /// SentenceBERT-style blocking (DITTO's "advanced blocking"): a
    /// `(u, v, |u-v|)` classification head trained on the labeled pairs;
    /// its input projection defines the indexed embeddings.
    SentenceBert,
    /// Fixed hand-crafted rule candidates (no embedding index).
    Rules,
}

/// Training data for the blocker's negative pairs (§3.2.2, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NegativeSource {
    /// Random records from `R` and `S` — DIAL's choice.
    #[default]
    Random,
    /// The hard actively-labeled negatives `T − Tp`.
    Labeled,
}

/// Blocker training objective (§3.2.3, Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockerObjective {
    /// InfoNCE-style contrastive loss (Eq. 8) — DIAL's choice.
    #[default]
    Contrastive,
    /// Margin-based triplet loss (Tracz et al. 2020), margin 1, no hard
    /// negative mining.
    Triplet,
    /// Binary cross-entropy separating duplicates from non-duplicates
    /// (SentenceBERT-style).
    Classification,
}

/// Example-selection strategy (§2.3, §4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Entropy of the matcher probability (Eq. 4) — the default.
    #[default]
    Uncertainty,
    /// Uniformly random from the candidate set.
    Random,
    /// Most similar pairs first (smallest embedding distance).
    Greedy,
    /// Soft query-by-committee disagreement over a bootstrap committee of
    /// matcher heads.
    Qbc,
    /// High-confidence sampling with partition, querying only the
    /// low-confidence halves.
    Partition2,
    /// Partition variant querying all four subsets.
    Partition4,
    /// BADGE: k-means++ on hallucinated gradient embeddings.
    Badge,
}

/// Which ANN index family backs nearest-neighbour retrieval — the
/// FAISS-style deployment knob of §5.4. `Flat` is exact and the default;
/// the approximate families trade blocker recall for probe latency and are
/// selected per run (config, `REPRO_BACKEND`, or the `repro --backend`
/// flag) without touching retrieval code, which goes through
/// [`dial_ann::AnnIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexBackend {
    /// Exact brute-force scan (pre-refactor behavior, bit-for-bit).
    #[default]
    Flat,
    /// IVF-Flat: scan only the `nprobe` of `nlist` k-means cells nearest
    /// each probe.
    IvfFlat { nlist: usize, nprobe: usize },
    /// Product quantization with `m` subspaces of `2^nbits` codes, scored
    /// by asymmetric distance computation.
    Pq { m: usize, nbits: u8 },
    /// HNSW graph with degree `m` and search beam `ef_search`.
    Hnsw { m: usize, ef_search: usize },
    /// Size-heuristic family choice, resolved per run against the row
    /// count of the indexed list ([`IndexBackend::resolve`]): exact
    /// `Flat` below [`IndexBackend::AUTO_FLAT_MAX`] rows, `IvfFlat` with
    /// `nlist = √n` above.
    Auto,
}

impl IndexBackend {
    /// Row count below which [`IndexBackend::Auto`] picks the exact flat
    /// scan; at this size a blocked brute-force probe is cheaper than an
    /// IVF build + coarse quantization, and it keeps blocker recall
    /// exact. Above it, Auto trades exactness for `nlist = √n` inverted
    /// lists.
    pub const AUTO_FLAT_MAX: usize = 50_000;

    /// Safety margin of the shard cost model: splitting must save at
    /// least this many times the merge overhead it adds before
    /// [`IndexBackend::auto_shards`] will take it. A wide margin keeps
    /// the pick stable against micro-measurement noise — near the
    /// break-even point the two sides of the inequality are within the
    /// timer's jitter, and a margin of 4 puts the decision boundary well
    /// outside it.
    pub const SHARD_MERGE_SAFETY: f64 = 4.0;

    /// Shard count for an auto-tuned run, from an explicit cost model:
    /// the largest `s ≤ workers` whose per-shard scan work still
    /// outweighs the merge overhead it adds —
    /// `(n/s)·scan ≥ SHARD_MERGE_SAFETY · s · merge` — or `1` when no
    /// split pays for itself. Replaces the old static 25k-row-per-shard
    /// floor, which encoded one machine's break-even point as a
    /// universal constant: on hosts where `merge_topk` is cheap relative
    /// to the scan the floor under-sharded, and vice versa.
    /// Deterministic in its four arguments — the calibration determinism
    /// guarantee includes the shard pick.
    pub fn auto_shards_with_model(
        n_rows: usize,
        workers: usize,
        scan_ns_per_row: f64,
        merge_ns_per_list: f64,
    ) -> usize {
        if n_rows == 0 || workers <= 1 {
            return 1;
        }
        let scan = scan_ns_per_row.max(f64::MIN_POSITIVE);
        let merge = merge_ns_per_list.max(0.0);
        (2..=workers)
            .rev()
            .find(|&s| {
                (n_rows as f64 / s as f64) * scan >= Self::SHARD_MERGE_SAFETY * s as f64 * merge
            })
            .unwrap_or(1)
    }

    /// [`IndexBackend::auto_shards_with_model`] fed by a one-time
    /// micro-measurement of this host's actual per-row scan cost and
    /// per-list `merge_topk` cost (cached for the process, so every pick
    /// in a run sees the same model and stays deterministic in
    /// `(n_rows, workers)`).
    pub fn auto_shards(n_rows: usize, workers: usize) -> usize {
        let (scan, merge) = measured_shard_costs();
        Self::auto_shards_with_model(n_rows, workers, scan, merge)
    }

    /// Resolve the `Auto` heuristic against the row count the index will
    /// hold; concrete backends return themselves unchanged. `Auto` picks
    /// `Flat` below [`IndexBackend::AUTO_FLAT_MAX`] rows and
    /// `IvfFlat { nlist: √n, nprobe: max(1, nlist/8) }` at or above it.
    ///
    /// For a sharded run, resolve against the rows one *shard* holds
    /// ([`IndexBackend::resolve_sharded`]), not the total — each child
    /// index only ever sees `n/shards` rows.
    pub fn resolve(self, n_rows: usize) -> IndexBackend {
        match self {
            IndexBackend::Auto => {
                if n_rows < Self::AUTO_FLAT_MAX {
                    IndexBackend::Flat
                } else {
                    let nlist = (n_rows as f64).sqrt() as usize;
                    IndexBackend::IvfFlat { nlist, nprobe: (nlist / 8).max(1) }
                }
            }
            b => b,
        }
    }

    /// [`IndexBackend::resolve`] for a sharded run: the family is chosen
    /// per *shard* — `n_rows` total rows split round-robin leave each
    /// shard `⌈n/shards⌉` at most, and that is the population whose size
    /// decides flat-vs-IVF (and sizes `nlist = √rows`). Resolving
    /// against the total used to make a 120k-row `auto@4` pick IVF even
    /// though every 30k-row shard sits well under
    /// [`IndexBackend::AUTO_FLAT_MAX`].
    pub fn resolve_sharded(self, n_rows: usize, shards: usize) -> IndexBackend {
        self.resolve(n_rows.div_ceil(shards.max(1)))
    }

    /// [`IndexBackend::label`], but `Auto` reports the concrete family it
    /// resolves to at `n_rows` — `auto(flat)`, `auto(ivf:316,39)` — so a
    /// sweep row never hides which index actually ran.
    pub fn resolved_label(&self, n_rows: usize) -> String {
        self.resolved_label_sharded(n_rows, 1)
    }

    /// [`IndexBackend::resolved_label`] for a sharded run: the family in
    /// the parentheses is the per-shard resolution, suffixed with the
    /// shard count — `auto(flat@4)`, `auto(ivf:273,34@4)`.
    pub fn resolved_label_sharded(&self, n_rows: usize, shards: usize) -> String {
        match self {
            IndexBackend::Auto => {
                format!("auto({})", self.resolve_sharded(n_rows, shards).label_sharded(shards))
            }
            b => b.label_sharded(shards),
        }
    }

    /// Default-parameter instance of every backend, for sweeps.
    pub fn presets() -> [IndexBackend; 4] {
        [
            IndexBackend::Flat,
            IndexBackend::IvfFlat { nlist: 64, nprobe: 8 },
            IndexBackend::Pq { m: 8, nbits: 6 },
            IndexBackend::Hnsw { m: 16, ef_search: 48 },
        ]
    }

    /// Parse a CLI/env value: `flat`, `ivf[:nlist[,nprobe]]`,
    /// `pq[:m[,nbits]]`, or `hnsw[:m[,ef_search]]` (family names are
    /// case-insensitive; `ivf-flat`/`ivf_flat` are accepted). Sharded
    /// specs (`<family>@<shards>`) are rejected here — use
    /// [`IndexBackend::parse_sharded`] when the caller can carry the
    /// shard count.
    pub fn parse(s: &str) -> Option<IndexBackend> {
        let s = s.trim().to_ascii_lowercase();
        let (family, params) = match s.split_once(':') {
            Some((f, p)) => (f, Some(p)),
            None => (s.as_str(), None),
        };
        let nums: Vec<usize> = match params {
            None => Vec::new(),
            Some(p) => p.split(',').map(|x| x.trim().parse().ok()).collect::<Option<_>>()?,
        };
        // Reject surplus parameters (and any parameters for flat/auto) so
        // a typo'd spec errors instead of silently running something else.
        if nums.len() > if matches!(family, "flat" | "auto") { 0 } else { 2 } {
            return None;
        }
        let get = |i: usize, default: usize| nums.get(i).copied().unwrap_or(default);
        // Reject parameter values validate() would panic on, so the CLI
        // surfaces a clean usage error instead of a backtrace.
        let backend = match family {
            "flat" => IndexBackend::Flat,
            "auto" => IndexBackend::Auto,
            "ivf" | "ivf-flat" | "ivf_flat" | "ivfflat" => {
                IndexBackend::IvfFlat { nlist: get(0, 64), nprobe: get(1, 8) }
            }
            "pq" => {
                let nbits = get(1, 6);
                if !(1..=8).contains(&nbits) {
                    return None;
                }
                IndexBackend::Pq { m: get(0, 8), nbits: nbits as u8 }
            }
            "hnsw" => IndexBackend::Hnsw { m: get(0, 16), ef_search: get(1, 48) },
            _ => return None,
        };
        match backend {
            IndexBackend::IvfFlat { nlist, nprobe } if nlist == 0 || nprobe == 0 => None,
            IndexBackend::Pq { m: 0, .. } => None,
            IndexBackend::Hnsw { m, ef_search } if m < 2 || ef_search == 0 => None,
            b => Some(b),
        }
    }

    /// Parse a backend spec with an optional `@<shards>` suffix, e.g.
    /// `ivf:16,4@8` or `flat@4`. Returns the family plus the shard count
    /// (1 when the suffix is absent); a zero shard count is rejected.
    pub fn parse_sharded(s: &str) -> Option<(IndexBackend, usize)> {
        match s.split_once('@') {
            None => IndexBackend::parse(s).map(|b| (b, 1)),
            Some((family, shards)) => {
                let shards: usize = shards.trim().parse().ok()?;
                if shards == 0 {
                    return None;
                }
                IndexBackend::parse(family).map(|b| (b, shards))
            }
        }
    }

    /// Short label for report rows.
    pub fn label(&self) -> String {
        match self {
            IndexBackend::Flat => "flat".into(),
            IndexBackend::IvfFlat { nlist, nprobe } => format!("ivf:{nlist},{nprobe}"),
            IndexBackend::Pq { m, nbits } => format!("pq:{m},{nbits}"),
            IndexBackend::Hnsw { m, ef_search } => format!("hnsw:{m},{ef_search}"),
            IndexBackend::Auto => "auto".into(),
        }
    }

    /// Label including the shard count (`flat@4`); plain [`Self::label`]
    /// when unsharded, so existing report rows are unchanged.
    pub fn label_sharded(&self, shards: usize) -> String {
        if shards > 1 {
            format!("{}@{shards}", self.label())
        } else {
            self.label()
        }
    }

    /// Resolve to a `dial-ann` build spec. `seed` keys quantizer/graph
    /// training so runs stay deterministic per [`DialConfig::seed`].
    ///
    /// Panics on [`IndexBackend::Auto`]: the heuristic needs a row count,
    /// so resolve it first ([`IndexBackend::resolve`] /
    /// [`DialConfig::index_spec_for`]).
    pub fn spec(&self, seed: u64) -> IndexSpec {
        match *self {
            IndexBackend::Auto => {
                panic!("IndexBackend::Auto must be resolved against a row count before spec()")
            }
            IndexBackend::Flat => IndexSpec::Flat,
            IndexBackend::IvfFlat { nlist, nprobe } => IndexSpec::IvfFlat(IvfParams {
                nlist,
                nprobe,
                seed: seed ^ 0x1d1a11,
                ..Default::default()
            }),
            IndexBackend::Pq { m, nbits } => {
                IndexSpec::Pq(PqParams { m, nbits, seed: seed ^ 0x1d1a12 })
            }
            IndexBackend::Hnsw { m, ef_search } => IndexSpec::Hnsw(HnswParams {
                m,
                ef_search,
                seed: seed ^ 0x1d1a13,
                ..Default::default()
            }),
        }
    }

    /// Resolve to a build spec wrapped into `shards` round-robin shards.
    /// `shards <= 1` returns the plain family spec, keeping the default
    /// single-shard path bit-for-bit identical to pre-sharding behavior.
    pub fn spec_sharded(&self, seed: u64, shards: usize) -> IndexSpec {
        let inner = self.spec(seed);
        if shards > 1 {
            inner.sharded(shards)
        } else {
            inner
        }
    }
}

/// One-time micro-measurement behind [`IndexBackend::auto_shards`]:
/// `(scan_ns_per_row, merge_ns_per_list)` on this host. The scan side
/// times a blocked flat probe over a small synthetic corpus (the same
/// kernel a shard scans with); the merge side times [`merge_topk`] over
/// the per-shard hit lists a fan-out produces. Both are amortized over
/// enough repetitions that the quantities land well above timer
/// granularity, and the result is cached for the process.
fn measured_shard_costs() -> (f64, f64) {
    use dial_ann::{merge_topk, FlatIndex, Hit, Metric};
    use std::sync::OnceLock;
    use std::time::Instant;
    static COSTS: OnceLock<(f64, f64)> = OnceLock::new();
    *COSTS.get_or_init(|| {
        const DIM: usize = 32;
        const ROWS: usize = 2_048;
        const QUERIES: usize = 16;
        const K: usize = 10;
        // Deterministic synthetic rows (a Weyl sequence — no RNG needed;
        // the kernel's cost does not depend on the values).
        let data: Vec<f32> = (0..ROWS * DIM)
            .map(|i| (i.wrapping_mul(2_654_435_761) % 10_000) as f32 / 10_000.0)
            .collect();
        let mut ix = FlatIndex::new(DIM, Metric::L2);
        ix.add_batch(&data);
        let queries = &data[..QUERIES * DIM];
        let hits = ix.search_batch(queries, K); // warm the cache once
        let t = Instant::now();
        let _ = ix.search_batch(queries, K);
        let scan_ns = t.elapsed().as_nanos() as f64 / (QUERIES * ROWS) as f64;
        // Merge cost: combine 8 per-shard top-k lists, many times over.
        const LISTS: usize = 8;
        const REPS: usize = 2_000;
        let lists: Vec<Vec<Hit>> = (0..LISTS)
            .map(|l| {
                (0..K)
                    .map(|i| Hit {
                        id: (l * K + i) as u32,
                        distance: hits[0].get(i).map_or(i as f32, |h| h.distance),
                    })
                    .collect()
            })
            .collect();
        let t = Instant::now();
        for _ in 0..REPS {
            std::hint::black_box(merge_topk(std::hint::black_box(&lists), K));
        }
        let merge_ns = t.elapsed().as_nanos() as f64 / (REPS * LISTS) as f64;
        (scan_ns.max(1e-3), merge_ns.max(1e-3))
    })
}

/// Candidate-set size policy (§4.6.3, Table 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CandSize {
    /// `3 · |dups|` (uses gold cardinality; ablation only).
    Small,
    /// The per-dataset default: `3 · |S|` (or `20 · |S|` for Abt-Buy).
    Medium,
    /// `5 · |S|` (or `20 · |S|` for Abt-Buy — "Large" in Table 6).
    Large,
    /// Explicit multiple of `|S|`.
    MultipleOfS(f64),
}

impl CandSize {
    /// Resolve to a pair count.
    pub fn resolve(self, s_len: usize, n_dups: usize, abt_buy_like: bool) -> usize {
        let n = match self {
            CandSize::Small => 3 * n_dups,
            CandSize::Medium => {
                if abt_buy_like {
                    20 * s_len
                } else {
                    3 * s_len
                }
            }
            CandSize::Large => {
                if abt_buy_like {
                    20 * s_len
                } else {
                    5 * s_len
                }
            }
            CandSize::MultipleOfS(m) => (m * s_len as f64).ceil() as usize,
        };
        n.max(1)
    }
}

/// Full configuration of one active-learning run.
#[derive(Debug, Clone)]
pub struct DialConfig {
    pub tplm: TplmConfig,
    /// Active-learning rounds (paper: 10).
    pub rounds: usize,
    /// Labeling budget per round (paper: 128).
    pub budget: usize,
    /// Initial seed positives / negatives (paper: 64 / 64).
    pub seed_pos: usize,
    pub seed_neg: usize,
    /// Matcher fine-tuning epochs per round (paper: 20).
    pub matcher_epochs: usize,
    /// Committee training epochs per round (paper: 200).
    pub blocker_epochs: usize,
    /// Mini-batch size (paper: 16).
    pub batch_size: usize,
    /// Trunk learning rate. The paper uses 3e-5 for RoBERTa; the mini
    /// transformer trains from a much shallower pre-trained prior and needs
    /// a proportionally larger step (see DESIGN.md §5).
    pub lr_trunk: f32,
    /// Matcher-head learning rate (paper: 1e-3).
    pub lr_head: f32,
    /// Committee / SBERT-blocker learning rate.
    pub lr_committee: f32,
    /// Committee size `N` (paper: 3).
    pub committee: usize,
    /// Committee mask keep-probability `p` (paper: 0.5).
    pub mask_p: f32,
    /// Neighbours retrieved per probe `k` (paper: 3; 20 for Abt-Buy).
    pub k: usize,
    /// Candidate-set size policy.
    pub cand_size: CandSize,
    /// ANN backend for all embedding retrieval (Index-By-Committee and the
    /// single-index strategies).
    pub index_backend: IndexBackend,
    /// Storage format for the scan rows of flat/IVF retrieval indexes
    /// (f32 by default; f16/bf16 halve the scan footprint, ranking
    /// against the decoded rows — see `dial_ann::RowFormat`). Quantized
    /// and graph backends ignore it.
    pub row_format: dial_ann::RowFormat,
    /// Round-robin shard count for every retrieval index: `1` (default)
    /// builds one index per committee member exactly as before; `n > 1`
    /// splits each member's rows across `n` child indexes built
    /// concurrently and merges per-shard top-k at probe time
    /// (`Sharded(Flat, n)` retrieves identically to `Flat`).
    pub index_shards: usize,
    /// Incremental re-indexing gate for the persistent retrieval engine:
    /// when the mean cosine shift of a member's embeddings against the
    /// cached previous round is at or below this threshold, the engine
    /// refreshes the existing index in place (row overwrite +
    /// `add_batch`) instead of rebuilding from scratch. `0.0` (the
    /// default) engages the incremental path only when no stored row
    /// changed at all; with the row set also unchanged — the AL-loop
    /// case, `|R|` is fixed across rounds — the refresh is a no-op and
    /// exact for every family. Appended rows stream in via the family's
    /// `add_batch` contract (bitwise a rebuild for Flat/sharded-Flat;
    /// quantized families assign against their trained structures
    /// without retraining). Positive values additionally admit row
    /// overwrites, trading retrieval freshness of quantized structures
    /// for indexing latency.
    pub incremental_threshold: f64,
    /// Close the auto-tuning loop from *observed* metrics: when on, the
    /// retrieval engine runs a calibration stage on the first round (and
    /// again after quantizer-invalidating rebuilds) — a held-out sample
    /// of `S` is probed against the exact flat ground truth and the IVF
    /// `nprobe` is raised until marginal recall@k flattens or
    /// [`DialConfig::tune_recall_target`] is met, never choosing worse
    /// recall than the static heuristic's default width. With the `Auto`
    /// backend and no explicit `--shards`, the shard count is also
    /// picked from worker-thread count and per-shard size
    /// ([`IndexBackend::auto_shards`]) instead of the CLI value. Off by
    /// default: the static size heuristic's candidate sets are
    /// reproduced bit-for-bit.
    pub auto_tune: bool,
    /// Recall@k the calibration sweep aims for before it stops raising
    /// `nprobe` (the sweep also stops when marginal recall flattens, and
    /// never settles below the static default's measured recall).
    pub tune_recall_target: f64,
    /// Held-out probes of `S` the calibration stage measures recall and
    /// latency over (clamped to `|S|`).
    pub tune_sample: usize,
    /// In-flight depth of the committee build/probe pipeline: member
    /// `i`'s index build overlaps member `i-1`'s probes through a bounded
    /// channel holding at most this many built indexes. `0` disables the
    /// overlap (strictly sequential build-then-probe per member); the
    /// retrieved candidate set is identical either way.
    pub pipeline_depth: usize,
    /// Treat the dataset as Abt-Buy-like (small `|S|`: larger `cand`, `k`).
    pub abt_buy_like: bool,
    pub blocking: BlockingStrategy,
    pub negatives: NegativeSource,
    pub objective: BlockerObjective,
    pub selection: SelectionStrategy,
    /// Directory for versioned member-index snapshots: after the first
    /// round's retrieval the engine persists every committee member's
    /// trained index (and the exact rows it indexed) here, written on a
    /// background thread that overlaps the selection stage. `None` (the
    /// default) disables persistence entirely.
    pub snapshot_dir: Option<PathBuf>,
    /// Load member snapshots from [`DialConfig::snapshot_dir`] at run
    /// start (on a background thread overlapping round-0 committee
    /// training) and warm-start the retrieval engine from them. A
    /// snapshot that is corrupt, truncated, or was written under a
    /// different index spec / embedding width / row format is rejected
    /// with a warning and the run falls back to a cold build; a loaded
    /// snapshot whose rows no longer match the fresh embeddings is
    /// rebuilt by the engine's bitwise row comparison — either way the
    /// warm run's retrievals are bit-for-bit the cold run's.
    pub warm_start: bool,
    /// Freeze the TPLM trunk during matcher training (the paper does this
    /// for the multilingual dataset, §4.5).
    pub freeze_trunk: bool,
    /// Skip-gram pre-training passes (the "pre-trained" prior; 0 disables).
    pub pretrain_epochs: usize,
    /// Base RNG seed for the run.
    pub seed: u64,
}

impl Default for DialConfig {
    fn default() -> Self {
        DialConfig {
            tplm: TplmConfig::default(),
            rounds: 6,
            budget: 32,
            seed_pos: 24,
            seed_neg: 24,
            matcher_epochs: 40,
            blocker_epochs: 10,
            batch_size: 16,
            lr_trunk: 3e-3,
            lr_head: 3e-2,
            lr_committee: 1e-3,
            committee: 3,
            mask_p: 0.5,
            k: 3,
            cand_size: CandSize::Medium,
            index_backend: IndexBackend::Flat,
            row_format: dial_ann::RowFormat::F32,
            index_shards: 1,
            incremental_threshold: 0.0,
            auto_tune: false,
            tune_recall_target: 0.95,
            tune_sample: 256,
            pipeline_depth: 2,
            abt_buy_like: false,
            blocking: BlockingStrategy::Dial,
            negatives: NegativeSource::Random,
            objective: BlockerObjective::Contrastive,
            selection: SelectionStrategy::Uncertainty,
            snapshot_dir: None,
            warm_start: false,
            freeze_trunk: false,
            pretrain_epochs: 2,
            seed: 0,
        }
    }
}

impl DialConfig {
    /// A configuration small enough for integration tests: one round, tiny
    /// model, few epochs.
    pub fn smoke() -> Self {
        DialConfig {
            tplm: TplmConfig {
                vocab_size: 2048 + 5,
                d_model: 32,
                n_layers: 1,
                n_heads: 2,
                d_ff: 64,
                max_len: 48,
                dropout: 0.0,
                seed: 0,
            },
            rounds: 2,
            budget: 8,
            seed_pos: 8,
            seed_neg: 8,
            matcher_epochs: 20,
            blocker_epochs: 8,
            batch_size: 8,
            committee: 2,
            pretrain_epochs: 1,
            ..Default::default()
        }
    }

    /// The ANN build spec this configuration retrieves through: the
    /// backend family seeded from [`DialConfig::seed`], wrapped into
    /// [`DialConfig::index_shards`] round-robin shards when sharding is
    /// on. Panics on [`IndexBackend::Auto`] (no row count to resolve the
    /// heuristic against) — runs that may carry `auto` should use
    /// [`DialConfig::index_spec_for`].
    pub fn index_spec(&self) -> dial_ann::IndexSpec {
        self.index_backend.spec_sharded(self.seed, self.index_shards)
    }

    /// The shard count a run over `n_rows` rows actually uses: the
    /// configured [`DialConfig::index_shards`], unless auto-tuning is on
    /// with the `Auto` backend and no explicit sharding — then the count
    /// comes from the worker-thread count and the measured scan-vs-merge
    /// cost model
    /// ([`IndexBackend::auto_shards`]).
    pub fn resolved_shards(&self, n_rows: usize) -> usize {
        if self.auto_tune && self.index_shards <= 1 && self.index_backend == IndexBackend::Auto {
            IndexBackend::auto_shards(n_rows, rayon::current_num_threads())
        } else {
            self.index_shards
        }
    }

    /// [`DialConfig::index_spec`] with [`IndexBackend::Auto`] resolved
    /// against `n_rows`, the row count of the list being indexed (`|R|`
    /// in the AL loop — every retrieval index holds one view of `R`).
    /// The construction point the AL loop uses. Under sharding, `Auto`
    /// resolves against the rows one shard will hold
    /// ([`IndexBackend::resolve_sharded`]), so `auto@4` over 120k rows
    /// builds four exact 30k-row shards instead of four undersized IVF
    /// ones, and per-shard `nlist` is sized from per-shard rows.
    pub fn index_spec_for(&self, n_rows: usize) -> dial_ann::IndexSpec {
        let shards = self.resolved_shards(n_rows);
        self.index_backend.resolve_sharded(n_rows, shards).spec_sharded(self.seed, shards)
    }

    /// Validate cross-field invariants.
    pub fn validate(&self) {
        self.tplm.validate();
        assert!(self.rounds >= 1, "need at least one AL round");
        assert!(self.batch_size >= 2, "batch size must allow negatives");
        assert!(self.committee >= 1, "committee size must be >= 1");
        assert!((0.0..=1.0).contains(&self.mask_p), "mask_p out of range");
        assert!(self.k >= 1, "k must be >= 1");
        assert!(self.index_shards >= 1, "index_shards must be >= 1");
        assert!(
            self.incremental_threshold >= 0.0 && self.incremental_threshold.is_finite(),
            "incremental_threshold must be finite and >= 0"
        );
        assert!(
            self.tune_recall_target > 0.0 && self.tune_recall_target <= 1.0,
            "tune_recall_target must be in (0, 1]"
        );
        assert!(self.tune_sample >= 1, "tune_sample must be >= 1");
        match self.index_backend {
            IndexBackend::Flat | IndexBackend::Auto => {}
            IndexBackend::IvfFlat { nlist, nprobe } => {
                assert!(nlist >= 1, "IVF nlist must be >= 1");
                assert!(nprobe >= 1, "IVF nprobe must be >= 1");
            }
            IndexBackend::Pq { m, nbits } => {
                assert!(m >= 1, "PQ m must be >= 1");
                assert!((1..=8).contains(&nbits), "PQ nbits must be in 1..=8");
                // IndexSpec::build would clamp a non-divisor m to keep the
                // trait usable on arbitrary data, but a DIAL run must not
                // silently measure different parameters than it reports.
                assert!(
                    self.tplm.d_model.is_multiple_of(m),
                    "PQ m={m} must divide d_model={} (a non-divisor would be clamped and the \
                     run mislabeled)",
                    self.tplm.d_model
                );
            }
            IndexBackend::Hnsw { m, ef_search } => {
                assert!(m >= 2, "HNSW m must be >= 2");
                assert!(ef_search >= 1, "HNSW ef_search must be >= 1");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        DialConfig::default().validate();
        DialConfig::smoke().validate();
    }

    #[test]
    fn cand_size_resolution() {
        assert_eq!(CandSize::Small.resolve(1000, 50, false), 150);
        assert_eq!(CandSize::Medium.resolve(1000, 50, false), 3000);
        assert_eq!(CandSize::Medium.resolve(100, 50, true), 2000);
        assert_eq!(CandSize::Large.resolve(1000, 50, false), 5000);
        assert_eq!(CandSize::MultipleOfS(0.5).resolve(1000, 50, false), 500);
    }

    #[test]
    fn cand_size_never_zero() {
        assert_eq!(CandSize::Small.resolve(0, 0, false), 1);
    }

    #[test]
    fn backend_parsing() {
        assert_eq!(IndexBackend::parse("flat"), Some(IndexBackend::Flat));
        assert_eq!(IndexBackend::parse("FLAT"), Some(IndexBackend::Flat));
        assert_eq!(
            IndexBackend::parse("ivf"),
            Some(IndexBackend::IvfFlat { nlist: 64, nprobe: 8 })
        );
        assert_eq!(
            IndexBackend::parse("ivf:16,4"),
            Some(IndexBackend::IvfFlat { nlist: 16, nprobe: 4 })
        );
        assert_eq!(IndexBackend::parse("pq:4"), Some(IndexBackend::Pq { m: 4, nbits: 6 }));
        assert_eq!(
            IndexBackend::parse("hnsw:8,32"),
            Some(IndexBackend::Hnsw { m: 8, ef_search: 32 })
        );
        assert_eq!(IndexBackend::parse("faiss"), None);
        assert_eq!(IndexBackend::parse("ivf:x"), None);
        // Values validate() would reject must fail parse, not panic later.
        assert_eq!(IndexBackend::parse("ivf:0"), None);
        assert_eq!(IndexBackend::parse("ivf:64,0"), None);
        assert_eq!(IndexBackend::parse("pq:0"), None);
        assert_eq!(IndexBackend::parse("pq:4,0"), None);
        assert_eq!(IndexBackend::parse("pq:4,9"), None);
        assert_eq!(IndexBackend::parse("hnsw:1"), None);
        assert_eq!(IndexBackend::parse("hnsw:8,0"), None);
        // Surplus parameters are an error, not silently dropped.
        assert_eq!(IndexBackend::parse("flat:64"), None);
        assert_eq!(IndexBackend::parse("hnsw:16,48,200"), None);
        assert_eq!(IndexBackend::parse("ivf:64,8,2"), None);
    }

    #[test]
    fn auto_backend_parses_resolves_and_labels() {
        assert_eq!(IndexBackend::parse("auto"), Some(IndexBackend::Auto));
        assert_eq!(IndexBackend::parse("AUTO"), Some(IndexBackend::Auto));
        // The heuristic takes no parameters; a typo'd spec must error.
        assert_eq!(IndexBackend::parse("auto:4"), None);
        assert_eq!(IndexBackend::parse_sharded("auto@4"), Some((IndexBackend::Auto, 4)));
        // Below the flat ceiling: exact scan. At/above: IVF with √n lists.
        assert_eq!(IndexBackend::Auto.resolve(10_000), IndexBackend::Flat);
        assert_eq!(
            IndexBackend::Auto.resolve(1_000_000),
            IndexBackend::IvfFlat { nlist: 1000, nprobe: 125 }
        );
        // Concrete backends resolve to themselves.
        let hnsw = IndexBackend::Hnsw { m: 16, ef_search: 48 };
        assert_eq!(hnsw.resolve(1_000_000), hnsw);
        // Reports never hide the concrete family that actually ran.
        assert_eq!(IndexBackend::Auto.resolved_label(100), "auto(flat)");
        assert_eq!(IndexBackend::Auto.resolved_label(1_000_000), "auto(ivf:1000,125)");
        assert_eq!(hnsw.resolved_label(100), hnsw.label());
        // Auto validates and resolves through the config entry point.
        let cfg = DialConfig {
            index_backend: IndexBackend::Auto,
            index_shards: 2,
            ..DialConfig::smoke()
        };
        cfg.validate();
        assert_eq!(cfg.index_spec_for(100), IndexSpec::Flat.sharded(2));
    }

    #[test]
    #[should_panic(expected = "resolved against a row count")]
    fn auto_spec_without_row_count_panics() {
        IndexBackend::Auto.spec(0);
    }

    #[test]
    fn sharded_auto_resolves_per_shard_not_per_total() {
        // Regression: auto@4 over 120k rows used to resolve against the
        // total and pick IVF, though every 30k-row shard sits under the
        // flat ceiling.
        let cfg = DialConfig {
            index_backend: IndexBackend::Auto,
            index_shards: 4,
            ..DialConfig::smoke()
        };
        cfg.validate();
        assert_eq!(cfg.index_spec_for(120_000), IndexSpec::Flat.sharded(4));
        assert_eq!(
            IndexBackend::Auto.resolve_sharded(120_000, 4),
            IndexBackend::Flat,
            "per-shard population 30k < AUTO_FLAT_MAX must stay exact"
        );
        // Straddling the threshold: 300k over 4 shards is 75k per shard,
        // so IVF it is — with nlist sized from *per-shard* rows (√75000),
        // not from the 300k total (√300000 = 547).
        assert_eq!(
            IndexBackend::Auto.resolve_sharded(300_000, 4),
            IndexBackend::IvfFlat { nlist: 273, nprobe: 34 }
        );
        let spec = DialConfig {
            index_backend: IndexBackend::Auto,
            index_shards: 4,
            seed: 0,
            ..DialConfig::smoke()
        }
        .index_spec_for(300_000);
        match &spec {
            IndexSpec::Sharded { inner, shards: 4 } => match inner.as_ref() {
                IndexSpec::IvfFlat(p) => assert_eq!((p.nlist, p.nprobe), (273, 34)),
                other => panic!("expected per-shard IVF, got {other:?}"),
            },
            other => panic!("expected a 4-way sharded spec, got {other:?}"),
        }
        // Unsharded resolution is unchanged from the pre-tuner heuristic.
        assert_eq!(
            IndexBackend::Auto.resolve_sharded(120_000, 1),
            IndexBackend::Auto.resolve(120_000)
        );
        // Exactly at the ceiling per shard: IVF, same as unsharded at n.
        assert_eq!(
            IndexBackend::Auto.resolve_sharded(2 * IndexBackend::AUTO_FLAT_MAX, 2),
            IndexBackend::Auto.resolve(IndexBackend::AUTO_FLAT_MAX)
        );
        // The sharded resolved label shows the per-shard family.
        assert_eq!(IndexBackend::Auto.resolved_label_sharded(120_000, 4), "auto(flat@4)");
        assert_eq!(IndexBackend::Auto.resolved_label_sharded(300_000, 4), "auto(ivf:273,34@4)");
    }

    #[test]
    fn shard_cost_model_picks_the_break_even_split() {
        use IndexBackend as B;
        // With scan = merge = 1 ns the inequality is n/s >= 4s, i.e.
        // s <= sqrt(n)/2: exact picks at synthetic costs.
        assert_eq!(B::auto_shards_with_model(1_000_000, 8, 1.0, 1.0), 8, "capped by workers");
        assert_eq!(B::auto_shards_with_model(256, 8, 1.0, 1.0), 8, "sqrt(256)/2 = 8 exactly");
        assert_eq!(B::auto_shards_with_model(255, 8, 1.0, 1.0), 7);
        assert_eq!(B::auto_shards_with_model(100, 8, 1.0, 1.0), 5);
        assert_eq!(B::auto_shards_with_model(15, 8, 1.0, 1.0), 1, "no split pays for itself");
        // A pricier merge shifts break-even toward fewer shards; a
        // pricier scan toward more.
        assert_eq!(B::auto_shards_with_model(100, 8, 1.0, 25.0), 1);
        assert_eq!(B::auto_shards_with_model(100, 8, 100.0, 1.0), 8);
        // Degenerate inputs never panic and never split.
        assert_eq!(B::auto_shards_with_model(0, 8, 1.0, 1.0), 1);
        assert_eq!(B::auto_shards_with_model(1_000_000, 0, 1.0, 1.0), 1);
        assert_eq!(B::auto_shards_with_model(1_000_000, 1, 1.0, 1.0), 1);
        assert_eq!(B::auto_shards_with_model(100, 8, 0.0, 0.0), 8, "zero costs still bounded");
    }

    #[test]
    fn auto_shards_is_bounded_monotone_and_deterministic() {
        use IndexBackend as B;
        // The measured model can land anywhere on a given host; what
        // must always hold: within [1, workers], monotone nondecreasing
        // in n (the process-cached costs are fixed), 1 on degenerate
        // input, and the same answer every call.
        let mut prev = 1usize;
        for n in [0usize, 1_000, 30_000, 120_000, 1_000_000, 10_000_000] {
            let s = B::auto_shards(n, 8);
            assert!((1..=8).contains(&s), "auto_shards({n}, 8) = {s} out of bounds");
            assert!(s >= prev, "more rows must never shard less ({n}: {s} < {prev})");
            assert_eq!(s, B::auto_shards(n, 8), "must be deterministic per process");
            prev = s;
        }
        assert_eq!(B::auto_shards(0, 8), 1);
        assert_eq!(B::auto_shards(1_000_000, 0), 1, "a zero worker count still shards once");
        assert_eq!(B::auto_shards(10_000_000, 4), 4, "a huge corpus saturates the workers");
    }

    #[test]
    fn auto_tune_shard_pick_only_engages_for_unsharded_auto() {
        let base = DialConfig {
            index_backend: IndexBackend::Auto,
            auto_tune: true,
            ..DialConfig::smoke()
        };
        base.validate();
        // Explicit sharding always wins over the heuristic.
        let explicit = DialConfig { index_shards: 3, ..base.clone() };
        assert_eq!(explicit.resolved_shards(1_000_000), 3);
        // A concrete backend never gets auto-sharded.
        let concrete = DialConfig { index_backend: IndexBackend::Flat, ..base.clone() };
        assert_eq!(concrete.resolved_shards(1_000_000), 1);
        // Unsharded Auto under --auto-tune picks from workers + cost model.
        let workers = rayon::current_num_threads();
        assert_eq!(base.resolved_shards(1_000_000), IndexBackend::auto_shards(1_000_000, workers));
        // With auto_tune off, index_spec_for reproduces the static
        // heuristic's spec bit-for-bit (shards stay at the CLI value).
        let off = DialConfig { auto_tune: false, ..base };
        assert_eq!(
            off.index_spec_for(10_000),
            IndexBackend::Auto.resolve(10_000).spec_sharded(off.seed, 1)
        );
    }

    #[test]
    #[should_panic(expected = "tune_recall_target")]
    fn out_of_range_recall_target_rejected() {
        DialConfig { tune_recall_target: 1.5, ..DialConfig::smoke() }.validate();
    }

    #[test]
    #[should_panic(expected = "tune_sample")]
    fn zero_tune_sample_rejected() {
        DialConfig { tune_sample: 0, ..DialConfig::smoke() }.validate();
    }

    #[test]
    #[should_panic(expected = "incremental_threshold")]
    fn negative_incremental_threshold_rejected() {
        DialConfig { incremental_threshold: -0.5, ..DialConfig::smoke() }.validate();
    }

    #[test]
    fn backend_labels_roundtrip_through_parse() {
        for b in IndexBackend::presets() {
            assert_eq!(IndexBackend::parse(&b.label()), Some(b), "{}", b.label());
        }
    }

    #[test]
    fn sharded_parsing_and_labels() {
        assert_eq!(IndexBackend::parse_sharded("flat"), Some((IndexBackend::Flat, 1)));
        assert_eq!(IndexBackend::parse_sharded("flat@4"), Some((IndexBackend::Flat, 4)));
        assert_eq!(
            IndexBackend::parse_sharded("ivf:16,4@8"),
            Some((IndexBackend::IvfFlat { nlist: 16, nprobe: 4 }, 8))
        );
        // Zero shards, junk counts, and junk families all fail cleanly.
        assert_eq!(IndexBackend::parse_sharded("flat@0"), None);
        assert_eq!(IndexBackend::parse_sharded("flat@x"), None);
        assert_eq!(IndexBackend::parse_sharded("faiss@2"), None);
        // The plain parser refuses sharded specs rather than mislabeling.
        assert_eq!(IndexBackend::parse("flat@4"), None);
        // Labels round-trip with and without the suffix.
        for b in IndexBackend::presets() {
            for shards in [1usize, 4] {
                assert_eq!(
                    IndexBackend::parse_sharded(&b.label_sharded(shards)),
                    Some((b, shards)),
                    "{}",
                    b.label_sharded(shards)
                );
            }
        }
        assert_eq!(IndexBackend::Flat.label_sharded(1), "flat", "no suffix at 1 shard");
    }

    #[test]
    fn spec_sharded_wraps_only_above_one() {
        use dial_ann::IndexSpec;
        assert_eq!(IndexBackend::Flat.spec_sharded(0, 1), IndexSpec::Flat);
        assert_eq!(
            IndexBackend::Flat.spec_sharded(0, 4),
            IndexSpec::Sharded { inner: Box::new(IndexSpec::Flat), shards: 4 }
        );
        let cfg = DialConfig { index_shards: 3, ..DialConfig::smoke() };
        assert_eq!(cfg.index_spec(), IndexSpec::Flat.sharded(3));
    }

    #[test]
    #[should_panic(expected = "index_shards")]
    fn zero_shards_rejected_by_validate() {
        DialConfig { index_shards: 0, ..DialConfig::smoke() }.validate();
    }

    #[test]
    fn all_backend_presets_validate() {
        for b in IndexBackend::presets() {
            DialConfig { index_backend: b, ..DialConfig::smoke() }.validate();
        }
    }

    #[test]
    #[should_panic(expected = "nbits")]
    fn zero_nbits_rejected() {
        DialConfig { index_backend: IndexBackend::Pq { m: 4, nbits: 0 }, ..DialConfig::smoke() }
            .validate();
    }
}
