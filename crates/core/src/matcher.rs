//! The matcher: TPLM in paired mode + RoBERTa-style classification head
//! (paper §3.1).
//!
//! `Pr(y=1 | (r,s)) = sigmoid(F_W(E(r,s)))` where `E(r,s)` is the `[CLS]`
//! contextual embedding and `F_W` is dropout → linear → tanh → dropout →
//! linear (the default RoBERTa classification head, §4.2). Training
//! minimizes binary cross-entropy (Eq. 6) over the labeled pairs with
//! AdamW, a smaller trunk learning rate, and a linear no-warm-up schedule.
//!
//! Gradient batches are data-parallel: the batch is split into chunks, each
//! chunk accumulates into a cloned parameter store, and the shards are
//! reduced before the optimizer step — numerically identical to a serial
//! batch up to float addition order.

use crate::config::DialConfig;
use dial_datasets::LabeledPair;
use dial_tensor::optim::{AdamW, LrGroup, Schedule};
use dial_tensor::{init, sigmoid, Graph, Matrix, ParamId, ParamStore, Var};
use dial_text::{paired_mode_ids, Record, TokenId, Vocab};
use dial_tplm::{Tplm, TRUNK_PREFIX};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Parameter-name prefix of the matcher head.
pub const MATCHER_PREFIX: &str = "matcher.";

/// Paired-mode matcher over a shared TPLM trunk.
#[derive(Debug, Clone)]
pub struct Matcher {
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    dropout: f32,
}

impl Matcher {
    /// Register head parameters. The trunk must already be registered in
    /// `store` (its handles live in `model`).
    pub fn new(store: &mut ParamStore, model: &Tplm) -> Self {
        let d = model.config().d_model;
        let mut rng = StdRng::seed_from_u64(model.config().seed ^ 0x4ead);
        Matcher {
            w1: store.add(format!("{MATCHER_PREFIX}w1"), init::xavier_uniform(4 * d, d, &mut rng)),
            b1: store.add(format!("{MATCHER_PREFIX}b1"), Matrix::zeros(1, d)),
            w2: store.add(format!("{MATCHER_PREFIX}w2"), init::xavier_uniform(d + 8, 1, &mut rng)),
            b2: store.add(format!("{MATCHER_PREFIX}b2"), Matrix::zeros(1, 1)),
            dropout: model.config().dropout,
        }
    }

    /// Build the logit graph for one paired token sequence. Returns the
    /// `[1, 1]` logit variable.
    ///
    /// The head reads `[E(r,s); mean_r; mean_s; |mean_r − mean_s|]` where
    /// `E(r,s)` is the CLS contextual embedding and `mean_r`/`mean_s` are
    /// the contextual mean-pools of the two segments. A fully pre-trained
    /// RoBERTa packs this pair-comparison signal into CLS itself; a mini
    /// transformer trained from a shallow prior needs it spelled out
    /// (DESIGN.md §2).
    pub fn logit_graph(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        model: &Tplm,
        ids: &[TokenId],
        train: bool,
        rng: &mut StdRng,
    ) -> Var {
        self.logit_and_hidden(g, store, model, ids, train, rng).0
    }

    /// As [`Matcher::logit_graph`], additionally returning the penultimate
    /// head activation (used as the BADGE/QBC feature vector).
    pub fn logit_and_hidden(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        model: &Tplm,
        ids: &[TokenId],
        train: bool,
        rng: &mut StdRng,
    ) -> (Var, Var) {
        let p = if train { self.dropout } else { 0.0 };
        let ctx = model.encode(g, store, ids, p, rng);
        let n = ids.len();
        // The middle [SEP] position: first SEP after CLS.
        let boundary = ids
            .iter()
            .position(|&t| t == dial_text::Vocab::SEP)
            .expect("paired input must contain a separator");
        let cls = g.slice_rows(ctx, 0, 1);
        let seg_r = g.slice_rows(ctx, 1, boundary.max(2));
        let seg_s = g.slice_rows(ctx, (boundary + 1).min(n - 1), n - 1);
        let mean_r = g.mean_rows(seg_r);
        let mean_s = g.mean_rows(seg_s);
        let diff = g.sub(mean_r, mean_s);
        let diff = g.abs(diff);
        // Bidirectional soft-containment at two sharpness scales, over both
        // the *contextual* embeddings and the raw token embeddings (where
        // token identity is crisp): for each token on one side, the
        // log-sum-exp of negated scaled distances to the other side ≈ its
        // best alignment. Duplicates are covered both ways; near-duplicates
        // leave decisive tokens unmatched. RoBERTa learns this comparison
        // internally; the mini model gets it as an explicit feature block
        // wired straight into the output layer (DESIGN.md §2).
        // The coverage block is *detached*: it is a deterministic reading of
        // the embeddings, computed outside the tape, so its (large)
        // gradients cannot crowd out the trunk's under global norm
        // clipping.
        let d = model.config().d_model as f32;
        let tok_table = store.value(model.token_embedding_param());
        let tok_rows: Vec<&[f32]> = ids.iter().map(|&t| tok_table.row(t as usize)).collect();
        let ctx_val = g.value(ctx);
        let ctx_rows: Vec<&[f32]> = (0..n).map(|i| ctx_val.row(i)).collect();
        let seg = |rows: &[&[f32]]| -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
            let r: Vec<Vec<f32>> = rows[1..boundary.max(2)].iter().map(|x| x.to_vec()).collect();
            let s_: Vec<Vec<f32>> =
                rows[(boundary + 1).min(n - 1)..n - 1].iter().map(|x| x.to_vec()).collect();
            (r, s_)
        };
        let (ctx_r_rows, ctx_s_rows) = seg(&ctx_rows);
        let (tok_r_rows, tok_s_rows) = seg(&tok_rows);
        // Crisp identity embeddings: fixed hash-random vectors per token id.
        // Coverage over these is a smooth token-Jaccard, unaffected by how
        // much pre-training contracts the semantic space.
        let crisp_rows: Vec<Vec<f32>> = ids.iter().map(|&t| crisp_vec(t)).collect();
        let crisp_refs: Vec<&[f32]> = crisp_rows.iter().map(|v| v.as_slice()).collect();
        let (crisp_r, crisp_s) = seg(&crisp_refs);
        let mut cov_vals: Vec<f32> = Vec::with_capacity(8);
        for (a, b, tau) in [
            (&crisp_r, &crisp_s, CRISP_DIM as f32 / 8.0),
            (&ctx_r_rows, &ctx_s_rows, d / 8.0),
            (&tok_r_rows, &tok_s_rows, d / 8.0),
        ] {
            cov_vals.push(0.25 * coverage(a, b, tau));
            cov_vals.push(0.25 * coverage(b, a, tau));
        }
        // Plus a hard token-Jaccard scalar for good measure.
        cov_vals
            .push(hard_jaccard(&ids[1..boundary.max(2)], &ids[(boundary + 1).min(n - 1)..n - 1]));
        cov_vals.push(0.0); // reserved
        let cov = g.input(Matrix::row_vector(cov_vals));
        let feat = g.concat_cols(&[cls, mean_r, mean_s, diff]);
        let feat = g.dropout(feat, p, rng);
        let w1 = g.param(store, self.w1);
        let b1 = g.param(store, self.b1);
        let h = g.linear(feat, w1, b1);
        let h = g.tanh(h);
        let h = g.dropout(h, p, rng);
        // Output layer reads the deep representation plus the coverage
        // block through a direct linear path.
        let h_full = g.concat_cols(&[h, cov]);
        let w2 = g.param(store, self.w2);
        let b2 = g.param(store, self.b2);
        let logit = g.linear(h_full, w2, b2);
        (logit, h_full)
    }

    /// Duplicate probability for one record pair (inference).
    pub fn prob(
        &self,
        store: &ParamStore,
        model: &Tplm,
        vocab: &Vocab,
        r: &Record,
        s: &Record,
    ) -> f32 {
        self.prob_and_feature(store, model, vocab, r, s).0
    }

    /// Probability plus the penultimate head activation (the feature vector
    /// whose output-layer gradient BADGE embeds).
    pub fn prob_and_feature(
        &self,
        store: &ParamStore,
        model: &Tplm,
        vocab: &Vocab,
        r: &Record,
        s: &Record,
    ) -> (f32, Vec<f32>) {
        let ids = paired_mode_ids(r, s, vocab, model.config().max_len);
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let (z, h) = self.logit_and_hidden(&mut g, store, model, &ids, false, &mut rng);
        let feature = g.value(h).as_slice().to_vec();
        (sigmoid(g.value(z).item()), feature)
    }

    /// Duplicate probabilities for many pairs, rayon-parallel.
    pub fn probs_batch(
        &self,
        store: &ParamStore,
        model: &Tplm,
        vocab: &Vocab,
        pairs: &[(&Record, &Record)],
    ) -> Vec<f32> {
        pairs.par_iter().map(|(r, s)| self.prob(store, model, vocab, r, s)).collect()
    }

    /// Fine-tune trunk + head on `labeled` pairs (Eq. 6). Returns the mean
    /// loss of the final epoch.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        &self,
        store: &mut ParamStore,
        model: &Tplm,
        vocab: &Vocab,
        r_list: &dial_text::RecordList,
        s_list: &dial_text::RecordList,
        labeled: &[LabeledPair],
        cfg: &DialConfig,
        round: usize,
    ) -> f32 {
        assert!(!labeled.is_empty(), "cannot train the matcher on zero pairs");
        if cfg.freeze_trunk {
            model.set_trunk_frozen(store, true);
        }
        let max_len = model.config().max_len;
        // Pre-tokenize once.
        // Class-balance weights: actively-selected batches grow increasingly
        // negative-heavy; without re-weighting the small model collapses to
        // the majority class (RoBERTa's capacity absorbs this, ours needs
        // the standard re-weighting).
        let n_pos = labeled.iter().filter(|p| p.label).count().max(1);
        let n_neg = (labeled.len() - n_pos.min(labeled.len())).max(1);
        let w_pos = labeled.len() as f32 / (2.0 * n_pos as f32);
        let w_neg = labeled.len() as f32 / (2.0 * n_neg as f32);
        let examples: Vec<(Vec<TokenId>, f32, f32)> = labeled
            .iter()
            .map(|p| {
                let ids = paired_mode_ids(r_list.get(p.r), s_list.get(p.s), vocab, max_len);
                if p.label {
                    (ids, 1.0, w_pos)
                } else {
                    (ids, 0.0, w_neg)
                }
            })
            .collect();

        let steps_per_epoch = examples.len().div_ceil(cfg.batch_size);
        let total_steps = steps_per_epoch * cfg.matcher_epochs;
        let mut opt = AdamW::with_groups(
            store,
            cfg.lr_head,
            vec![LrGroup { prefix: TRUNK_PREFIX.into(), lr: cfg.lr_trunk }],
            Schedule::LinearDecay { total_steps },
        );

        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut epoch_rng = StdRng::seed_from_u64(cfg.seed ^ (round as u64) << 20);
        let mut last_epoch_loss = 0.0;
        for epoch in 0..cfg.matcher_epochs {
            order.shuffle(&mut epoch_rng);
            let mut loss_sum = 0.0f64;
            for (step, batch) in order.chunks(cfg.batch_size).enumerate() {
                let loss = self.grad_step(
                    store,
                    model,
                    &examples,
                    batch,
                    cfg.seed ^ hash3(round, epoch, step),
                );
                store.clip_grad_norm(5.0);
                opt.step(store);
                loss_sum += loss as f64 * batch.len() as f64;
            }
            last_epoch_loss = (loss_sum / examples.len() as f64) as f32;
        }
        if cfg.freeze_trunk {
            model.set_trunk_frozen(store, false);
        }
        last_epoch_loss
    }

    /// One data-parallel gradient accumulation over `batch` indices.
    /// Returns the mean loss.
    fn grad_step(
        &self,
        store: &mut ParamStore,
        model: &Tplm,
        examples: &[(Vec<TokenId>, f32, f32)],
        batch: &[usize],
        seed: u64,
    ) -> f32 {
        let threads = rayon::current_num_threads().max(1);
        let chunk = batch.len().div_ceil(threads).max(1);
        let shards: Vec<(ParamStore, f64)> = batch
            .par_chunks(chunk)
            .map(|ixs| {
                let mut shard = store.clone();
                let mut loss = 0.0f64;
                for &i in ixs {
                    let (ids, label, weight) = &examples[i];
                    let mut rng = StdRng::seed_from_u64(seed ^ (i as u64));
                    let mut g = Graph::new();
                    let z = self.logit_graph(&mut g, &shard, model, ids, true, &mut rng);
                    let l = g.bce_with_logits(z, &[*label]);
                    let l = g.scale(l, *weight);
                    loss += g.value(l).item() as f64;
                    g.backward(l, &mut shard);
                }
                (shard, loss)
            })
            .collect();
        let mut loss_sum = 0.0;
        for (shard, loss) in &shards {
            store.accumulate_grads_from(shard);
            loss_sum += loss;
        }
        // Mean over the batch: gradients were summed per example, so
        // rescale to match a mean-reduction batch loss.
        let scale = 1.0 / batch.len() as f32;
        for id in store.ids().collect::<Vec<_>>() {
            if !store.is_frozen(id) {
                store.grad_mut(id).scale(scale);
            }
        }
        (loss_sum / batch.len() as f64) as f32
    }
}

/// Width of the crisp hash-identity embeddings.
const CRISP_DIM: usize = 16;

/// Deterministic pseudo-random unit-scale vector for a token id
/// (splitmix64-expanded), identical across runs and machines.
fn crisp_vec(token: TokenId) -> Vec<f32> {
    let mut state = (token as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1b5_4a32_d192_ed03;
    (0..CRISP_DIM)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z as f32 / u64::MAX as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Exact token-multiset Jaccard between two id slices.
fn hard_jaccard(a: &[TokenId], b: &[TokenId]) -> f32 {
    use std::collections::HashSet;
    let sa: HashSet<TokenId> = a.iter().copied().collect();
    let sb: HashSet<TokenId> = b.iter().copied().collect();
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    sa.intersection(&sb).count() as f32 / sa.union(&sb).count() as f32
}

/// Mean over rows of `a` of the soft-min (−τ·LSE) alignment score against
/// rows of `b`.
fn coverage(a: &[Vec<f32>], b: &[Vec<f32>], tau: f32) -> f32 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for x in a {
        let zs: Vec<f32> = b.iter().map(|y| -dial_tensor::sq_dist(x, y) / tau).collect();
        total += dial_tensor::logsumexp(&zs);
    }
    total / a.len() as f32
}

fn hash3(a: usize, b: usize, c: usize) -> u64 {
    (a as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((b as u64).wrapping_mul(0x85eb_ca6b))
        .wrapping_add(c as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dial_text::{RecordList, Schema};
    use dial_tplm::TplmConfig;

    fn setup() -> (ParamStore, Tplm, Matcher, Vocab, RecordList, RecordList) {
        let mut store = ParamStore::new();
        let model = Tplm::new(TplmConfig::tiny(), &mut store);
        let matcher = Matcher::new(&mut store, &model);
        let vocab = Vocab::new(64);
        let schema = Schema::new(vec!["t"]);
        let mut r = RecordList::new(schema.clone());
        let mut s = RecordList::new(schema);
        // Matching pairs share most tokens; non-matching share only one.
        let words = ["apple", "berry", "cedar", "dune", "ember", "fig", "grove", "holly"];
        for i in 0..8 {
            let text = format!("{} {} {} gadget", words[i], words[(i + 1) % 8], words[(i + 2) % 8]);
            r.push(vec![text.clone()]);
            s.push(vec![text]);
        }
        (store, model, matcher, vocab, r, s)
    }

    fn tiny_cfg() -> DialConfig {
        DialConfig {
            tplm: TplmConfig::tiny(),
            matcher_epochs: 30,
            batch_size: 4,
            lr_trunk: 1e-3,
            lr_head: 1e-2,
            ..DialConfig::smoke()
        }
    }

    #[test]
    fn prob_is_a_probability() {
        let (store, model, matcher, vocab, r, s) = setup();
        let p = matcher.prob(&store, &model, &vocab, r.get(0), s.get(0));
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn training_separates_easy_pairs() {
        let (mut store, model, matcher, vocab, r, s) = setup();
        let labeled: Vec<LabeledPair> = (0..8)
            .map(|i| LabeledPair::new(i, i, true))
            .chain((0..8).map(|i| LabeledPair::new(i, (i + 3) % 8, false)))
            .collect();
        let cfg = tiny_cfg();
        let loss = matcher.train(&mut store, &model, &vocab, &r, &s, &labeled, &cfg, 0);
        assert!(loss < 0.55, "loss {loss} did not drop");
        let p_dup = matcher.prob(&store, &model, &vocab, r.get(1), s.get(1));
        let p_non = matcher.prob(&store, &model, &vocab, r.get(1), s.get(5));
        assert!(p_dup > p_non, "trained matcher should rank dup {p_dup} above non-dup {p_non}");
    }

    #[test]
    fn probs_batch_matches_single() {
        let (store, model, matcher, vocab, r, s) = setup();
        let pairs: Vec<(&Record, &Record)> = vec![(r.get(0), s.get(0)), (r.get(1), s.get(2))];
        let batch = matcher.probs_batch(&store, &model, &vocab, &pairs);
        assert_eq!(batch.len(), 2);
        assert!((batch[0] - matcher.prob(&store, &model, &vocab, r.get(0), s.get(0))).abs() < 1e-6);
    }

    #[test]
    fn feature_vector_has_model_width() {
        let (store, model, matcher, vocab, r, s) = setup();
        let (_, feat) = matcher.prob_and_feature(&store, &model, &vocab, r.get(0), s.get(1));
        assert_eq!(feat.len(), 16 + 8);
    }

    #[test]
    fn freeze_trunk_leaves_trunk_untouched() {
        let (mut store, model, matcher, vocab, r, s) = setup();
        let before = store.value(model.token_embedding_param()).clone();
        let labeled: Vec<LabeledPair> = (0..4)
            .map(|i| LabeledPair::new(i, i, true))
            .chain((0..4).map(|i| LabeledPair::new(i, (i + 2) % 8, false)))
            .collect();
        let cfg = DialConfig { freeze_trunk: true, ..tiny_cfg() };
        matcher.train(&mut store, &model, &vocab, &r, &s, &labeled, &cfg, 0);
        assert_eq!(store.value(model.token_embedding_param()), &before);
        // And the trunk is unfrozen again afterwards.
        assert!(!store.is_frozen(model.token_embedding_param()));
    }

    #[test]
    fn deterministic_training() {
        let run = || {
            let (mut store, model, matcher, vocab, r, s) = setup();
            let labeled: Vec<LabeledPair> = (0..4)
                .map(|i| LabeledPair::new(i, i, true))
                .chain((0..4).map(|i| LabeledPair::new(i, (i + 2) % 8, false)))
                .collect();
            let cfg = tiny_cfg();
            matcher.train(&mut store, &model, &vocab, &r, &s, &labeled, &cfg, 0);
            matcher.prob(&store, &model, &vocab, r.get(0), s.get(0))
        };
        // Shard reduction order is deterministic (par_chunks preserves
        // order in collect), so repeated runs agree exactly.
        assert_eq!(run(), run());
    }
}
