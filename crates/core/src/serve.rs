//! Long-lived query serving over a built index: batched admission,
//! backpressure, and deadline shedding.
//!
//! Every probe-path optimisation so far — blocked kernels, SIMD dispatch,
//! sharded scatter-gather, snapshot warm start — is only exercised by
//! batch AL rounds. [`QueryService`] turns those kernels into a serving
//! front: single-query requests from many client threads flow into one
//! **bounded admission queue** (the MPSC variant of the engine's pipeline
//! channel), get **coalesced** into blocks of up to
//! [`ServeConfig::batch_max`] queries (default [`ADMISSION_BLOCK`], the
//! probe-side blocking unit), and hit [`AnnIndex::search_batch`] — whose
//! inner loops run on the work-stealing executor, so `--threads=N` (or
//! `RAYON_NUM_THREADS`) sizes the compute under every worker.
//!
//! Three load-control mechanisms, in the order a request meets them:
//!
//! 1. **Backpressure** — [`QueryService::submit`] never blocks: a full
//!    queue rejects with [`ServeError::Overloaded`] immediately, so
//!    clients learn about saturation at admission time, not after a
//!    queueing delay.
//! 2. **Coalescing** — a worker takes the oldest waiting request, then
//!    greedily drains whatever else is queued (up to `batch_max`) into
//!    one `search_batch` call. Under light load batches are small and
//!    latency is low; under heavy load batches grow toward the blocked
//!    kernel's sweet spot and throughput rises — batching effort scales
//!    with pressure by construction.
//! 3. **Deadline shedding** — a request whose *queue wait* exceeds its
//!    deadline is answered [`ServeError::DeadlineExceeded`] before any
//!    scan work happens. Shedding is all-or-nothing: a shed request
//!    contributes zero queries to the batch (tested via a
//!    counting-index harness).
//!
//! Correctness is inherited, not re-argued: the [`AnnIndex`] contract
//! says `search_batch` equals mapping `search` in order, and the service
//! packs survivor queries in arrival order and splits results one list
//! per query — so every response is **bitwise identical** to a direct
//! single-query [`AnnIndex::search`] call, independent of how requests
//! happened to be batched or how many workers raced. The proptests at
//! the bottom of this module drive that end-to-end through the queue.

use dial_ann::{AnnIndex, Hit};
use rayon::pipeline::{self, TryRecvError, TrySendError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The admission batch ceiling: the probe-side blocking unit
/// ([`crate::candidates`]' `PROBE_BLOCK`), i.e. the batch size the
/// blocked scan kernels are tuned for. Coalescing beyond it would only
/// grow queue wait without speeding the scan.
pub const ADMISSION_BLOCK: usize = crate::candidates::PROBE_BLOCK;

/// The service's time source. Production uses [`MonotonicClock`]; tests
/// drive [`ManualClock`] so queue-wait/deadline arithmetic is exact and
/// shed counts are deterministic.
pub trait ServeClock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin; must never go
    /// backwards.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time from a process-local [`Instant`] anchor.
pub struct MonotonicClock(Instant);

impl MonotonicClock {
    pub fn new() -> Self {
        MonotonicClock(Instant::now())
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeClock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// A hand-advanced clock for deterministic tests: time moves only when
/// the test says so.
#[derive(Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Move time forward by `ns`.
    pub fn advance_ns(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::SeqCst);
    }
}

impl ServeClock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Knobs of one [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission queue depth: requests waiting beyond this are rejected
    /// with [`ServeError::Overloaded`]. Sizing rule of thumb: the queue
    /// holds `queue_capacity / batch_max` full dispatch blocks, so its
    /// worst-case contribution to latency is that many scan times.
    pub queue_capacity: usize,
    /// Most queries coalesced into one `search_batch` call; clamped to
    /// at least 1. Defaults to [`ADMISSION_BLOCK`].
    pub batch_max: usize,
    /// Dispatch worker threads. `0` means **manual mode**: nothing runs
    /// until the caller pumps the queue with [`QueryService::pump`] —
    /// the deterministic-test configuration.
    pub workers: usize,
    /// Deadline applied to requests submitted without one. `None`
    /// disables shedding for such requests.
    pub default_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 1024,
            batch_max: ADMISSION_BLOCK,
            workers: 1,
            default_deadline: None,
        }
    }
}

/// Why a request produced no hits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full at submit time; retry later or back
    /// off. The query was never enqueued.
    Overloaded,
    /// The request waited in the queue past its deadline and was shed
    /// before any scan work; `waited_ns` is the queue wait observed at
    /// dispatch time.
    DeadlineExceeded { waited_ns: u64 },
    /// The service shut down before dispatching the request.
    Shutdown,
    /// Malformed request (dimension mismatch, `k == 0`).
    BadRequest(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "admission queue full"),
            ServeError::DeadlineExceeded { waited_ns } => {
                write!(f, "deadline exceeded after {waited_ns} ns in queue")
            }
            ServeError::Shutdown => write!(f, "service shut down"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed query: the hits plus the admission/completion timestamps
/// (the service clock), so callers compute end-to-end latency without a
/// side channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// Top-`k` hits — bitwise identical to `index.search(&query, k)`.
    pub hits: Vec<Hit>,
    /// Clock reading when the request entered the queue.
    pub admitted_ns: u64,
    /// Clock reading when the batch containing it finished scanning.
    pub finished_ns: u64,
}

/// One-shot result slot a [`Ticket`] blocks on; first write wins.
struct Slot {
    result: Mutex<Option<Result<ServeResponse, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot { result: Mutex::new(None), ready: Condvar::new() })
    }

    fn fill(&self, r: Result<ServeResponse, ServeError>) {
        let mut guard = self.result.lock().unwrap();
        if guard.is_none() {
            *guard = Some(r);
            self.ready.notify_all();
        }
    }
}

/// Handle to an admitted request; [`Ticket::wait`] blocks until the
/// service answers (hits, shed, or shutdown).
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Block until the request resolves.
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        let mut guard = self.slot.result.lock().unwrap();
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = self.slot.ready.wait(guard).unwrap();
        }
    }
}

/// A queued query. Dropping it unanswered (service teardown with a
/// non-empty queue) resolves its ticket with [`ServeError::Shutdown`],
/// so no waiter can hang.
struct Request {
    query: Vec<f32>,
    k: usize,
    admitted_ns: u64,
    deadline_ns: Option<u64>,
    slot: Arc<Slot>,
}

impl Drop for Request {
    fn drop(&mut self) {
        // No-op when the dispatcher already answered (first write wins).
        self.slot.fill(Err(ServeError::Shutdown));
    }
}

/// Monotone counters of everything the service did; snapshot via
/// [`QueryService::stats`]. Invariant (once the queue is drained):
/// `submitted == served + shed + rejected`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests that passed validation and were offered to the queue.
    pub submitted: u64,
    /// Requests refused with [`ServeError::Overloaded`] at admission.
    pub rejected: u64,
    /// Requests shed by deadline before scanning.
    pub shed: u64,
    /// Requests answered with hits.
    pub served: u64,
    /// `search_batch` calls issued (one per coalesced k-group).
    pub batches: u64,
}

#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    served: AtomicU64,
    batches: AtomicU64,
}

/// State shared between the submitting side, the workers, and the
/// manual pump.
struct Inner {
    index: Box<dyn AnnIndex>,
    clock: Arc<dyn ServeClock>,
    batch_max: usize,
    stats: StatCells,
}

impl Inner {
    /// Answer one coalesced batch: shed expired requests, pack the
    /// survivors in arrival order, scan once per distinct `k`, split the
    /// per-query hit lists back out.
    fn dispatch(&self, batch: Vec<Request>) {
        let now = self.clock.now_ns();
        let mut survivors: Vec<Request> = Vec::with_capacity(batch.len());
        for req in batch {
            let waited = now.saturating_sub(req.admitted_ns);
            match req.deadline_ns {
                Some(d) if waited > d => {
                    self.stats.shed.fetch_add(1, Ordering::Relaxed);
                    req.slot.fill(Err(ServeError::DeadlineExceeded { waited_ns: waited }));
                    // `req` drops here without ever touching the index:
                    // a shed request contributes zero queries to the scan.
                }
                _ => survivors.push(req),
            }
        }
        if survivors.is_empty() {
            return;
        }
        let dim = self.index.dim();
        // Group by k, preserving arrival order within each group (the
        // order `search_batch` must match `search` in).
        let mut groups: Vec<(usize, Vec<Request>)> = Vec::new();
        for req in survivors {
            match groups.iter_mut().find(|(k, _)| *k == req.k) {
                Some((_, g)) => g.push(req),
                None => groups.push((req.k, vec![req])),
            }
        }
        for (k, group) in groups {
            let mut packed = Vec::with_capacity(group.len() * dim);
            for req in &group {
                packed.extend_from_slice(&req.query);
            }
            let hit_lists = self.index.search_batch(&packed, k);
            debug_assert_eq!(hit_lists.len(), group.len());
            let finished_ns = self.clock.now_ns();
            self.stats.batches.fetch_add(1, Ordering::Relaxed);
            for (req, hits) in group.into_iter().zip(hit_lists) {
                self.stats.served.fetch_add(1, Ordering::Relaxed);
                req.slot.fill(Ok(ServeResponse {
                    hits,
                    admitted_ns: req.admitted_ns,
                    finished_ns,
                }));
            }
        }
    }
}

/// The serving front: owns a built index, a bounded admission queue,
/// and (optionally) a worker pool. See the module docs for the
/// admission → coalescing → shedding flow.
pub struct QueryService {
    inner: Arc<Inner>,
    /// `None` once shutdown began (dropping the last sender closes the
    /// queue and lets workers drain out).
    tx: Option<pipeline::Sender<Request>>,
    rx: Arc<Mutex<pipeline::Receiver<Request>>>,
    workers: Vec<JoinHandle<()>>,
    /// Applied to requests submitted without a deadline; read only at
    /// submit time, on the caller's thread.
    default_deadline: Option<Duration>,
}

impl QueryService {
    /// Serve `index` under `cfg` on the wall clock. Takes ownership of
    /// the index — typically detached from a
    /// [`crate::RetrievalEngine`] via
    /// [`crate::RetrievalEngine::take_member_index`], or built/loaded
    /// directly.
    pub fn new(index: Box<dyn AnnIndex>, cfg: ServeConfig) -> Self {
        Self::with_clock(index, cfg, Arc::new(MonotonicClock::new()))
    }

    /// [`QueryService::new`] with an explicit time source (tests inject
    /// [`ManualClock`] here).
    pub fn with_clock(
        index: Box<dyn AnnIndex>,
        cfg: ServeConfig,
        clock: Arc<dyn ServeClock>,
    ) -> Self {
        let (tx, rx) = pipeline::bounded::<Request>(cfg.queue_capacity.max(1));
        let inner = Arc::new(Inner {
            index,
            clock,
            batch_max: cfg.batch_max.max(1),
            stats: StatCells::default(),
        });
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers)
            .map(|w| {
                let inner = inner.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("dial-serve-{w}"))
                    .spawn(move || worker_loop(&inner, &rx))
                    .expect("spawn serve worker")
            })
            .collect();
        QueryService { inner, tx: Some(tx), rx, workers, default_deadline: cfg.default_deadline }
    }

    /// Offer one query for service. Never blocks: a full queue answers
    /// [`ServeError::Overloaded`] right away. `deadline` bounds the
    /// *queue wait* (falling back to the config default); the returned
    /// [`Ticket`] resolves with hits, a shed, or a shutdown notice.
    pub fn submit(
        &self,
        query: Vec<f32>,
        k: usize,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        if query.len() != self.inner.index.dim() {
            return Err(ServeError::BadRequest(format!(
                "query has {} values, index dimension is {}",
                query.len(),
                self.inner.index.dim()
            )));
        }
        if k == 0 {
            return Err(ServeError::BadRequest("k must be at least 1".into()));
        }
        let tx = match &self.tx {
            Some(tx) => tx,
            None => return Err(ServeError::Shutdown),
        };
        let deadline_ns = deadline.or(self.default_deadline).map(|d| d.as_nanos() as u64);
        let slot = Slot::new();
        let req = Request {
            query,
            k,
            admitted_ns: self.inner.clock.now_ns(),
            deadline_ns,
            slot: slot.clone(),
        };
        self.inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(req) {
            Ok(()) => Ok(Ticket { slot }),
            Err(TrySendError::Full(req)) => {
                self.inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                // Answer the (never-returned) ticket so the Drop below is
                // the documented Shutdown-on-drop no-op, then discard.
                req.slot.fill(Err(ServeError::Overloaded));
                Err(ServeError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Shutdown),
        }
    }

    /// Manual-mode dispatch: drain everything currently queued on the
    /// caller's thread, in coalesced batches, and return how many
    /// requests were resolved (served + shed). With `workers > 0` this
    /// merely competes with the pool; it exists so `workers: 0` tests
    /// control exactly when dispatch happens relative to a
    /// [`ManualClock`].
    pub fn pump(&self) -> usize {
        let mut resolved = 0;
        loop {
            let batch = take_batch(&self.rx, self.inner.batch_max, false);
            if batch.is_empty() {
                return resolved;
            }
            resolved += batch.len();
            self.inner.dispatch(batch);
        }
    }

    /// Counter snapshot (monotone; see [`ServeStats`]).
    pub fn stats(&self) -> ServeStats {
        let s = &self.inner.stats;
        ServeStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            served: s.served.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
        }
    }

    /// The worker-count the service was built with (0 = manual mode).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Stop admitting, drain the queue (workers finish in-flight
    /// requests; manual mode pumps the remainder inline), and return
    /// the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        // Dropping the last Sender closes the queue: worker `recv` ends
        // after the drain.
        self.tx = None;
        if self.workers.is_empty() {
            self.pump();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.close();
    }
}

fn worker_loop(inner: &Inner, rx: &Mutex<pipeline::Receiver<Request>>) {
    loop {
        let batch = take_batch(rx, inner.batch_max, true);
        if batch.is_empty() {
            return;
        }
        inner.dispatch(batch);
    }
}

/// Take one coalesced batch off the queue: the oldest waiting request
/// (blocking for it when `block`), then greedily whatever else is
/// already queued, up to `batch_max`. Holding the receiver lock across
/// the grab means exactly one worker forms each batch; the scan itself
/// runs unlocked.
fn take_batch(
    rx: &Mutex<pipeline::Receiver<Request>>,
    batch_max: usize,
    block: bool,
) -> Vec<Request> {
    let rx = rx.lock().unwrap();
    let first = if block {
        match rx.recv() {
            Some(r) => r,
            None => return Vec::new(),
        }
    } else {
        match rx.try_recv() {
            Ok(r) => r,
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return Vec::new(),
        }
    };
    let mut batch = Vec::with_capacity(batch_max);
    batch.push(first);
    while batch.len() < batch_max {
        match rx.try_recv() {
            Ok(r) => batch.push(r),
            Err(_) => break,
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use dial_ann::{FlatIndex, Metric};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::AtomicUsize;

    fn flat(n: usize, dim: usize, seed: u64) -> FlatIndex {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut ix = FlatIndex::new(dim, Metric::L2);
        ix.add_batch(&rows);
        ix
    }

    fn queries(nq: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..nq).map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect()
    }

    fn manual_service(
        index: Box<dyn AnnIndex>,
        queue_capacity: usize,
    ) -> (QueryService, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let svc = QueryService::with_clock(
            index,
            ServeConfig { queue_capacity, batch_max: 64, workers: 0, default_deadline: None },
            clock.clone(),
        );
        (svc, clock)
    }

    /// Delegating wrapper that counts every query row the index actually
    /// scans — the instrument proving shed requests never reach the scan.
    struct CountingIndex {
        inner: FlatIndex,
        queries_scanned: Arc<AtomicUsize>,
    }

    impl AnnIndex for CountingIndex {
        fn dim(&self) -> usize {
            AnnIndex::dim(&self.inner)
        }
        fn len(&self) -> usize {
            AnnIndex::len(&self.inner)
        }
        fn metric(&self) -> Metric {
            AnnIndex::metric(&self.inner)
        }
        fn add_batch(&mut self, flat: &[f32]) {
            AnnIndex::add_batch(&mut self.inner, flat)
        }
        fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
            self.queries_scanned.fetch_add(1, Ordering::SeqCst);
            self.inner.search(query, k)
        }
        fn search_batch(&self, queries: &[f32], k: usize) -> Vec<Vec<Hit>> {
            self.queries_scanned
                .fetch_add(queries.len() / AnnIndex::dim(&self.inner), Ordering::SeqCst);
            AnnIndex::search_batch(&self.inner, queries, k)
        }
        fn snapshot_blob(&self) -> (u8, Vec<u8>) {
            self.inner.snapshot_blob()
        }
    }

    #[test]
    fn shed_counts_are_exact_under_a_manual_clock() {
        let (svc, clock) = manual_service(Box::new(flat(100, 4, 1)), 64);
        let q = queries(6, 4, 2);
        // Three requests with a 100 ns deadline, three without any.
        let doomed: Vec<Ticket> = q[..3]
            .iter()
            .map(|v| svc.submit(v.clone(), 3, Some(Duration::from_nanos(100))).unwrap())
            .collect();
        let safe: Vec<Ticket> =
            q[3..].iter().map(|v| svc.submit(v.clone(), 3, None).unwrap()).collect();
        clock.advance_ns(101); // strictly past the deadline
        assert_eq!(svc.pump(), 6);
        for t in doomed {
            assert_eq!(t.wait(), Err(ServeError::DeadlineExceeded { waited_ns: 101 }));
        }
        for t in safe {
            assert!(t.wait().is_ok());
        }
        let s = svc.stats();
        assert_eq!((s.submitted, s.shed, s.served, s.rejected), (6, 3, 3, 0));
    }

    #[test]
    fn deadline_boundary_is_strict_waited_must_exceed() {
        let (svc, clock) = manual_service(Box::new(flat(50, 4, 3)), 16);
        let q = queries(1, 4, 4)[0].clone();
        let t = svc.submit(q, 2, Some(Duration::from_nanos(100))).unwrap();
        clock.advance_ns(100); // waited == deadline: still in budget
        svc.pump();
        assert!(t.wait().is_ok(), "waited == deadline must be served, not shed");
        assert_eq!(svc.stats().shed, 0);
    }

    #[test]
    fn shed_requests_never_touch_the_index() {
        let scanned = Arc::new(AtomicUsize::new(0));
        let ix = CountingIndex { inner: flat(100, 4, 5), queries_scanned: scanned.clone() };
        let (svc, clock) = manual_service(Box::new(ix), 64);
        let q = queries(10, 4, 6);
        // 7 requests already past deadline at dispatch, 3 alive.
        for v in &q[..7] {
            svc.submit(v.clone(), 3, Some(Duration::from_nanos(10))).unwrap();
        }
        for v in &q[7..] {
            svc.submit(v.clone(), 3, None).unwrap();
        }
        clock.advance_ns(1_000);
        svc.pump();
        assert_eq!(
            scanned.load(Ordering::SeqCst),
            3,
            "a shed request must contribute zero queries to the scan"
        );
        let s = svc.stats();
        assert_eq!((s.shed, s.served), (7, 3));
    }

    #[test]
    fn full_queue_rejects_with_overloaded_and_counts_it() {
        let (svc, _clock) = manual_service(Box::new(flat(50, 4, 7)), 2);
        let q = queries(3, 4, 8);
        svc.submit(q[0].clone(), 1, None).unwrap();
        svc.submit(q[1].clone(), 1, None).unwrap();
        assert_eq!(svc.submit(q[2].clone(), 1, None).err(), Some(ServeError::Overloaded));
        let s = svc.stats();
        assert_eq!((s.submitted, s.rejected), (3, 1));
        // Draining frees the queue for new admissions.
        svc.pump();
        assert!(svc.submit(q[2].clone(), 1, None).is_ok());
    }

    #[test]
    fn bad_requests_are_refused_before_admission() {
        let (svc, _clock) = manual_service(Box::new(flat(50, 4, 9)), 16);
        assert!(matches!(svc.submit(vec![0.0; 3], 1, None), Err(ServeError::BadRequest(_))));
        assert!(matches!(svc.submit(vec![0.0; 4], 0, None), Err(ServeError::BadRequest(_))));
        assert_eq!(svc.stats().submitted, 0, "refused requests never count as submitted");
    }

    #[test]
    fn coalesced_batches_match_direct_single_query_search() {
        // The bitwise guarantee, across manual mode and several pool
        // sizes: whatever batches form, every response equals a direct
        // `search` on the same index.
        let dim = 8;
        let reference = flat(300, dim, 10);
        let qs = queries(97, dim, 11);
        let ks: Vec<usize> = (0..qs.len()).map(|i| 1 + i % 7).collect();
        let expected: Vec<Vec<Hit>> =
            qs.iter().zip(&ks).map(|(q, &k)| reference.search(q, k)).collect();
        for workers in [0usize, 1, 2, 4] {
            let svc = QueryService::new(
                Box::new(flat(300, dim, 10)),
                ServeConfig { queue_capacity: 128, batch_max: 16, workers, default_deadline: None },
            );
            let tickets: Vec<Ticket> =
                qs.iter().zip(&ks).map(|(q, &k)| svc.submit(q.clone(), k, None).unwrap()).collect();
            if workers == 0 {
                svc.pump();
            }
            let stats = svc.shutdown();
            assert_eq!(stats.served, qs.len() as u64);
            for (i, t) in tickets.into_iter().enumerate() {
                let resp = t.wait().unwrap();
                assert_eq!(resp.hits.len(), expected[i].len(), "query {i}, {workers} workers");
                for (got, want) in resp.hits.iter().zip(&expected[i]) {
                    assert_eq!(got.id, want.id, "query {i}, {workers} workers");
                    assert_eq!(
                        got.distance.to_bits(),
                        want.distance.to_bits(),
                        "query {i}, {workers} workers: distance not bitwise identical"
                    );
                }
            }
        }
    }

    #[test]
    fn shutdown_drains_the_queue_before_returning() {
        let svc = QueryService::new(
            Box::new(flat(100, 4, 12)),
            ServeConfig { queue_capacity: 64, batch_max: 8, workers: 2, default_deadline: None },
        );
        let tickets: Vec<Ticket> =
            queries(40, 4, 13).into_iter().map(|q| svc.submit(q, 5, None).unwrap()).collect();
        let stats = svc.shutdown();
        assert_eq!(stats.served + stats.shed, 40, "every admitted request resolves");
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn submit_after_shutdown_reports_shutdown() {
        let (svc, _clock) = manual_service(Box::new(flat(20, 4, 14)), 8);
        // Shutdown consumes the service; emulate a racing submitter by
        // checking the accounting invariant instead on a fresh service.
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, stats.served + stats.shed + stats.rejected);
    }

    #[test]
    fn batch_max_bounds_every_search_batch_call() {
        let (svc, _clock) = manual_service(Box::new(flat(100, 4, 15)), 64);
        // 10 queries, batch_max 64 → manual pump coalesces all ten into
        // one batch (single k), so exactly one scan call.
        for q in queries(10, 4, 16) {
            svc.submit(q, 3, None).unwrap();
        }
        svc.pump();
        assert_eq!(svc.stats().batches, 1, "one k-group, one coalesced scan");
    }
}
