//! Long-lived query serving over a built index: batched admission,
//! backpressure, deadline shedding, result caching, single-flight
//! coalescing, and zero-downtime index hot-swap.
//!
//! Every probe-path optimisation so far — blocked kernels, SIMD dispatch,
//! sharded scatter-gather, snapshot warm start — is only exercised by
//! batch AL rounds. [`QueryService`] turns those kernels into a serving
//! front: single-query requests from many client threads flow into one
//! **bounded admission queue** (the MPSC variant of the engine's pipeline
//! channel), get **coalesced** into blocks of up to
//! [`ServeConfig::batch_max`] queries (default [`ADMISSION_BLOCK`], the
//! probe-side blocking unit), and hit [`AnnIndex::search_batch`] — whose
//! inner loops run on the work-stealing executor, so `--threads=N` (or
//! `RAYON_NUM_THREADS`) sizes the compute under every worker.
//!
//! Load-control mechanisms, in the order a request meets them:
//!
//! 1. **Backpressure** — [`QueryService::submit`] never blocks: a full
//!    queue rejects with [`ServeError::Overloaded`] immediately, so
//!    clients learn about saturation at admission time, not after a
//!    queueing delay.
//! 2. **Batch coalescing** — a worker takes the oldest waiting request,
//!    then greedily drains whatever else is queued (up to `batch_max`)
//!    into one `search_batch` call. Under light load batches are small
//!    and latency is low; under heavy load batches grow toward the
//!    blocked kernel's sweet spot and throughput rises.
//! 3. **Deadline shedding** — a request whose *queue wait* exceeds its
//!    deadline is answered [`ServeError::DeadlineExceeded`] before any
//!    scan work happens. Shedding is all-or-nothing: a shed request
//!    contributes zero queries to the batch.
//!
//! Then two mechanisms that remove scan work entirely on skewed traffic
//! (the regime the zipfian load harness drives, where a few hot queries
//! dominate):
//!
//! 4. **Result cache** — a sharded, bounded LRU ([`crate::cache`]) keyed
//!    by `(query bit pattern, k, generation)` with full bitwise key
//!    verification on every hit. A repeat of a hot query is answered
//!    from the cache without touching the index.
//! 5. **Single-flight coalescing** — identical requests (same query
//!    bits, same k) that dispatch *together* collapse to one scan whose
//!    result fans out to every waiting [`Ticket`]: duplicates inside a
//!    batch ride their group's single packed query, and a worker that
//!    misses the cache while another worker is already scanning the same
//!    key at the same generation attaches its requests to that in-flight
//!    scan instead of issuing its own. Coalesced serves are counted
//!    separately from cache hits ([`ServeStats`]).
//!
//! **Generations and hot swap.** The service owns its index behind a
//! read–write lock and stamps every mutation with a monotone
//! **generation counter**: [`QueryService::install_index`] (replace the
//! whole index with a freshly built one — the zero-downtime "serve round
//! *r* while round *r+1* trains" swap), [`QueryService::refresh`]
//! (in-place row update), and the tuner knobs
//! [`QueryService::set_nprobe`] / [`QueryService::set_ef_search`]. Cache
//! entries carry the generation they were scanned at, and a lookup only
//! hits at the *current* generation — so a mutation invalidates the
//! whole cache in O(1) and a stale result is never served: the first
//! identical query after a swap misses and rescans against the new
//! index. Dispatch reads the generation under the index read lock, so a
//! scan, the generation it stamps, and the entries it caches are always
//! mutually consistent.
//!
//! Correctness is inherited, not re-argued: the [`AnnIndex`] contract
//! says `search_batch` equals mapping `search` in order; the service
//! packs one query per *unique* key in arrival order and fans each hit
//! list out to that key's requests, and cached entries are verbatim
//! copies of such a scan at the same generation — so every response is
//! **bitwise identical** to a direct single-query [`AnnIndex::search`]
//! call on the index version that served it, however requests were
//! batched, cached, coalesced, or raced over by workers. The proptests
//! in `crates/core/tests/proptests.rs` drive that end-to-end through the
//! queue, cache sizes included.

use crate::cache::{bits_eq, key_hash, CacheLookup, ResultCache};
use dial_ann::{AnnIndex, Hit, ShardStatsSnapshot};
use rayon::pipeline::{self, TryRecvError, TrySendError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The admission batch ceiling: the probe-side blocking unit
/// ([`crate::candidates`]' `PROBE_BLOCK`), i.e. the batch size the
/// blocked scan kernels are tuned for. Coalescing beyond it would only
/// grow queue wait without speeding the scan.
pub const ADMISSION_BLOCK: usize = crate::candidates::PROBE_BLOCK;

/// The service's time source. Production uses [`MonotonicClock`]; tests
/// drive [`ManualClock`] so queue-wait/deadline arithmetic is exact and
/// shed counts are deterministic.
pub trait ServeClock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin; must never go
    /// backwards.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time from a process-local [`Instant`] anchor.
pub struct MonotonicClock(Instant);

impl MonotonicClock {
    pub fn new() -> Self {
        MonotonicClock(Instant::now())
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeClock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// A hand-advanced clock for deterministic tests: time moves only when
/// the test says so.
#[derive(Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Move time forward by `ns`.
    pub fn advance_ns(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::SeqCst);
    }
}

impl ServeClock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Knobs of one [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission queue depth: requests waiting beyond this are rejected
    /// with [`ServeError::Overloaded`]. Sizing rule of thumb: the queue
    /// holds `queue_capacity / batch_max` full dispatch blocks, so its
    /// worst-case contribution to latency is that many scan times.
    pub queue_capacity: usize,
    /// Most queries coalesced into one `search_batch` call; clamped to
    /// at least 1. Defaults to [`ADMISSION_BLOCK`].
    pub batch_max: usize,
    /// Dispatch worker threads. `0` means **manual mode**: nothing runs
    /// until the caller pumps the queue with [`QueryService::pump`] —
    /// the deterministic-test configuration.
    pub workers: usize,
    /// Deadline applied to requests submitted without one. `None`
    /// disables shedding for such requests.
    pub default_deadline: Option<Duration>,
    /// Result-cache capacity in entries; `0` disables the cache
    /// entirely (single-flight coalescing still applies). Sizing rule of
    /// thumb: cover the hot set — under zipfian skew a cache of a few
    /// hundred entries absorbs the bulk of repeats.
    pub cache_entries: usize,
    /// Result-cache capacity in approximate bytes across all cache
    /// shards (`0` = no byte bound; the entry bound still applies). One
    /// entry costs about `dim * 4 + k * 8` bytes plus fixed overhead.
    pub cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 1024,
            batch_max: ADMISSION_BLOCK,
            workers: 1,
            default_deadline: None,
            cache_entries: 4096,
            cache_bytes: 16 << 20,
        }
    }
}

/// Why a request produced no hits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full at submit time; retry later or back
    /// off. The query was never enqueued.
    Overloaded,
    /// The request waited in the queue past its deadline and was shed
    /// before any scan work; `waited_ns` is the queue wait observed at
    /// dispatch time.
    DeadlineExceeded { waited_ns: u64 },
    /// The service shut down before dispatching the request.
    Shutdown,
    /// Malformed request (dimension mismatch, `k == 0`).
    BadRequest(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "admission queue full"),
            ServeError::DeadlineExceeded { waited_ns } => {
                write!(f, "deadline exceeded after {waited_ns} ns in queue")
            }
            ServeError::Shutdown => write!(f, "service shut down"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed query: the hits plus the admission/completion timestamps
/// (the service clock), so callers compute end-to-end latency without a
/// side channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// Top-`k` hits — bitwise identical to `index.search(&query, k)` on
    /// the index generation that served the request.
    pub hits: Vec<Hit>,
    /// Clock reading when the request entered the queue.
    pub admitted_ns: u64,
    /// Clock reading when the request was answered (batch scan finished,
    /// or the cache hit resolved).
    pub finished_ns: u64,
}

/// One-shot result slot a [`Ticket`] blocks on; first write wins.
struct Slot {
    result: Mutex<Option<Result<ServeResponse, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot { result: Mutex::new(None), ready: Condvar::new() })
    }

    fn fill(&self, r: Result<ServeResponse, ServeError>) {
        let mut guard = self.result.lock().unwrap();
        if guard.is_none() {
            *guard = Some(r);
            self.ready.notify_all();
        }
    }
}

/// Handle to an admitted request; [`Ticket::wait`] blocks until the
/// service answers (hits, shed, or shutdown).
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Block until the request resolves.
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        let mut guard = self.slot.result.lock().unwrap();
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = self.slot.ready.wait(guard).unwrap();
        }
    }
}

/// A queued query. The payload is one shared `Arc<[f32]>` allocation:
/// admission, in-batch dedup, the single-flight table, and the cache key
/// all hold the same buffer — no per-stage copies. Dropping a request
/// unanswered (service teardown with a non-empty queue) resolves its
/// ticket with [`ServeError::Shutdown`], so no waiter can hang.
struct Request {
    query: Arc<[f32]>,
    k: usize,
    admitted_ns: u64,
    deadline_ns: Option<u64>,
    slot: Arc<Slot>,
}

impl Drop for Request {
    fn drop(&mut self) {
        // No-op when the dispatcher already answered (first write wins).
        self.slot.fill(Err(ServeError::Shutdown));
    }
}

/// Monotone counters of everything the service did; snapshot via
/// [`QueryService::stats`]. Two closure invariants hold once the queue
/// is drained (gated by the serving bench and the end-to-end proptest):
///
/// * `submitted == served + shed + rejected` — every admitted request
///   resolves exactly once;
/// * `served == scanned + hits + coalesced` — every served request was
///   answered by exactly one of: paying a scan, a verified cache hit,
///   or attaching to another request's scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests that passed validation and were offered to the queue.
    pub submitted: u64,
    /// Requests refused with [`ServeError::Overloaded`] at admission.
    pub rejected: u64,
    /// Requests shed by deadline before scanning.
    pub shed: u64,
    /// Requests answered with hits.
    pub served: u64,
    /// `search_batch`/`search` calls issued (one per coalesced k-group).
    pub batches: u64,
    /// Served requests that paid an index scan (one per unique scanned
    /// key per dispatch).
    pub scanned: u64,
    /// Served requests answered from the result cache (bitwise-verified
    /// hits at the current generation).
    pub hits: u64,
    /// Cache lookups that found nothing servable (no entry, hash
    /// collision, or a stale generation). One lookup happens per unique
    /// key per dispatch, so `misses` counts *scans the cache could not
    /// save*, not requests.
    pub misses: u64,
    /// Served requests answered by another request's scan — in-batch
    /// duplicates and cross-worker single-flight attachments.
    pub coalesced: u64,
    /// Cache entries evicted by the LRU capacity bounds.
    pub evictions: u64,
    /// Stale-generation cache entries removed on discovery (each one is
    /// a mutation's O(1) invalidation becoming visible).
    pub invalidations: u64,
    /// Shard probes fanned out by the served index — the sum of
    /// per-shard probe counts when the index is sharded, 0 otherwise.
    /// Unlike the service counters above, these accumulate on the
    /// *index* (they reset when [`QueryService::install_index`] swaps
    /// it) and count queries × shards, so they sit outside the closure
    /// invariants. Per-shard detail via [`QueryService::shard_stats`].
    pub shard_probes: u64,
    /// Hedge requests the served index fired at slow shard replicas.
    pub hedges_fired: u64,
    /// Hedge requests that beat the preferred replica's response.
    pub hedges_won: u64,
}

impl ServeStats {
    /// Both closure invariants (see the type docs). Meaningful once the
    /// queue is drained — mid-flight snapshots may be transiently open.
    pub fn accounting_closes(&self) -> bool {
        self.submitted == self.served + self.shed + self.rejected
            && self.served == self.scanned + self.hits + self.coalesced
    }
}

#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    served: AtomicU64,
    batches: AtomicU64,
    scanned: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

/// A scan another dispatch can attach to: the verification query, the
/// generation it runs at, and the tickets waiting on its result.
struct InFlight {
    query: Arc<[f32]>,
    gen: u64,
    waiters: Vec<Request>,
}

/// One unique `(query bits, k)` within a dispatch batch, with every
/// request that asked for it.
struct KeyGroup {
    hash: u64,
    query: Arc<[f32]>,
    k: usize,
    reqs: Vec<Request>,
    /// This dispatch registered the key in the single-flight table (and
    /// must release it after the scan).
    registered: bool,
}

/// State shared between the submitting side, the workers, and the
/// manual pump.
struct Inner {
    /// The live index. Scans hold the read side; mutations
    /// (`install_index`, `refresh`, knob changes) take the write side
    /// and bump `generation` before releasing it.
    index: RwLock<Box<dyn AnnIndex>>,
    /// Pinned at construction; `install_index` enforces it, so `submit`
    /// validates without touching the index lock.
    dim: usize,
    clock: Arc<dyn ServeClock>,
    batch_max: usize,
    /// Monotone index-version counter; every cache entry is stamped
    /// with it (see the module docs).
    generation: AtomicU64,
    cache: Option<ResultCache>,
    /// The single-flight table: keys being scanned right now, by some
    /// dispatch, at some generation.
    inflight: Mutex<HashMap<(u64, usize), InFlight>>,
    stats: StatCells,
}

impl Inner {
    /// Answer one coalesced batch: shed expired requests, dedup the
    /// survivors by `(query bits, k)`, serve verified cache hits, attach
    /// to in-flight scans, then scan the remaining unique keys (packed
    /// in arrival order, one `search_batch` per distinct `k`) and fan
    /// each hit list out to its group and any cross-worker waiters.
    fn dispatch(&self, batch: Vec<Request>) {
        let now = self.clock.now_ns();
        let mut survivors: Vec<Request> = Vec::with_capacity(batch.len());
        for req in batch {
            let waited = now.saturating_sub(req.admitted_ns);
            match req.deadline_ns {
                Some(d) if waited > d => {
                    self.stats.shed.fetch_add(1, Ordering::Relaxed);
                    req.slot.fill(Err(ServeError::DeadlineExceeded { waited_ns: waited }));
                    // `req` drops here without ever touching the index:
                    // a shed request contributes zero queries to the scan.
                }
                _ => survivors.push(req),
            }
        }
        if survivors.is_empty() {
            return;
        }
        // Scans run under the index read lock; the generation is stable
        // while it is held (mutations bump it under the write lock), so
        // everything below — lookups, the in-flight gen stamp, cache
        // inserts — is consistent with the index being scanned.
        let index = self.index.read().unwrap();
        let gen = self.generation.load(Ordering::Acquire);

        // Dedup identical requests into key groups, first-arrival order.
        let mut groups: Vec<KeyGroup> = Vec::new();
        let mut by_key: HashMap<(u64, usize), usize> = HashMap::new();
        for req in survivors {
            let hash = key_hash(&req.query, req.k);
            match by_key.get(&(hash, req.k)) {
                Some(&gi) if bits_eq(&groups[gi].query, &req.query) => groups[gi].reqs.push(req),
                _ => {
                    by_key.insert((hash, req.k), groups.len());
                    groups.push(KeyGroup {
                        hash,
                        query: req.query.clone(),
                        k: req.k,
                        reqs: vec![req],
                        registered: false,
                    });
                }
            }
        }

        // Resolve each group: a verified cache hit serves the whole
        // group; otherwise attach to an in-flight scan of the same key,
        // or lead one ourselves.
        let mut to_scan: Vec<KeyGroup> = Vec::new();
        for mut group in groups {
            if let Some(cache) = &self.cache {
                match cache.lookup_hashed(group.hash, &group.query, group.k, gen) {
                    CacheLookup::Hit(hits) => {
                        let finished_ns = self.clock.now_ns();
                        self.stats.hits.fetch_add(group.reqs.len() as u64, Ordering::Relaxed);
                        for req in group.reqs {
                            self.stats.served.fetch_add(1, Ordering::Relaxed);
                            req.slot.fill(Ok(ServeResponse {
                                hits: hits.clone(),
                                admitted_ns: req.admitted_ns,
                                finished_ns,
                            }));
                        }
                        continue;
                    }
                    CacheLookup::Stale => {
                        self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
                        self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    }
                    CacheLookup::Miss => {
                        self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            {
                let mut inflight = self.inflight.lock().unwrap();
                match inflight.get_mut(&(group.hash, group.k)) {
                    // Another worker is scanning this exact key at this
                    // generation: hand it our requests instead of
                    // rescanning (single flight). The leader's fan-out
                    // does all the counting — served and coalesced —
                    // when it resolves the waiters.
                    Some(f) if f.gen == gen && bits_eq(&f.query, &group.query) => {
                        f.waiters.append(&mut group.reqs);
                        continue;
                    }
                    // A colliding or stale-generation leader occupies
                    // the key: scan ourselves, unregistered.
                    Some(_) => {}
                    None => {
                        inflight.insert(
                            (group.hash, group.k),
                            InFlight { query: group.query.clone(), gen, waiters: Vec::new() },
                        );
                        group.registered = true;
                    }
                }
            }
            to_scan.push(group);
        }
        if to_scan.is_empty() {
            return;
        }

        // Scan the unique keys, one packed `search_batch` per distinct
        // `k`, groups in arrival order within each (the order
        // `search_batch` must match `search` in).
        let mut k_groups: Vec<(usize, Vec<KeyGroup>)> = Vec::new();
        for g in to_scan {
            match k_groups.iter_mut().find(|(k, _)| *k == g.k) {
                Some((_, v)) => v.push(g),
                None => k_groups.push((g.k, vec![g])),
            }
        }
        for (k, gs) in k_groups {
            let hit_lists: Vec<Vec<Hit>> = if gs.len() == 1 {
                // One unique key: probe straight off the shared payload
                // allocation — no packing copy (`search` is bitwise the
                // one-query batch per the AnnIndex contract).
                vec![index.search(&gs[0].query, k)]
            } else {
                let mut packed = Vec::with_capacity(gs.len() * self.dim);
                for g in &gs {
                    packed.extend_from_slice(&g.query);
                }
                index.search_batch(&packed, k)
            };
            debug_assert_eq!(hit_lists.len(), gs.len());
            let finished_ns = self.clock.now_ns();
            self.stats.batches.fetch_add(1, Ordering::Relaxed);
            for (g, hits) in gs.into_iter().zip(hit_lists) {
                // Publish to the cache *before* releasing the in-flight
                // key: a racing dispatch then either finds the entry or
                // still attaches — never a window with neither.
                if let Some(cache) = &self.cache {
                    let evicted =
                        cache.insert_hashed(g.hash, g.query.clone(), k, gen, hits.clone());
                    self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
                }
                let waiters = match g.registered {
                    true => self
                        .inflight
                        .lock()
                        .unwrap()
                        .remove(&(g.hash, g.k))
                        .map(|f| f.waiters)
                        .unwrap_or_default(),
                    false => Vec::new(),
                };
                let mut paid_the_scan = true;
                for req in g.reqs.into_iter().chain(waiters) {
                    self.stats.served.fetch_add(1, Ordering::Relaxed);
                    match paid_the_scan {
                        true => self.stats.scanned.fetch_add(1, Ordering::Relaxed),
                        false => self.stats.coalesced.fetch_add(1, Ordering::Relaxed),
                    };
                    paid_the_scan = false;
                    req.slot.fill(Ok(ServeResponse {
                        hits: hits.clone(),
                        admitted_ns: req.admitted_ns,
                        finished_ns,
                    }));
                }
            }
        }
    }
}

/// The serving front: owns a built index behind a generation-stamped
/// read–write lock, a bounded admission queue, an optional worker pool,
/// and the result cache. See the module docs for the admission →
/// coalescing → shedding → cache/single-flight flow and the hot-swap
/// semantics.
pub struct QueryService {
    inner: Arc<Inner>,
    /// `None` once shutdown began (dropping the last sender closes the
    /// queue and lets workers drain out).
    tx: Option<pipeline::Sender<Request>>,
    rx: Arc<Mutex<pipeline::Receiver<Request>>>,
    workers: Vec<JoinHandle<()>>,
    /// Applied to requests submitted without a deadline; read only at
    /// submit time, on the caller's thread.
    default_deadline: Option<Duration>,
}

impl QueryService {
    /// Serve `index` under `cfg` on the wall clock. Takes ownership of
    /// the index — typically detached from a
    /// [`crate::RetrievalEngine`] via
    /// [`crate::RetrievalEngine::take_member_index`], cloned without
    /// disturbing the engine via
    /// [`crate::RetrievalEngine::clone_member_index`], or built/loaded
    /// directly.
    pub fn new(index: Box<dyn AnnIndex>, cfg: ServeConfig) -> Self {
        Self::with_clock(index, cfg, Arc::new(MonotonicClock::new()))
    }

    /// [`QueryService::new`] with an explicit time source (tests inject
    /// [`ManualClock`] here).
    pub fn with_clock(
        index: Box<dyn AnnIndex>,
        cfg: ServeConfig,
        clock: Arc<dyn ServeClock>,
    ) -> Self {
        let (tx, rx) = pipeline::bounded::<Request>(cfg.queue_capacity.max(1));
        let cache =
            (cfg.cache_entries > 0).then(|| ResultCache::new(cfg.cache_entries, cfg.cache_bytes));
        let inner = Arc::new(Inner {
            dim: index.dim(),
            index: RwLock::new(index),
            clock,
            batch_max: cfg.batch_max.max(1),
            generation: AtomicU64::new(0),
            cache,
            inflight: Mutex::new(HashMap::new()),
            stats: StatCells::default(),
        });
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers)
            .map(|w| {
                let inner = inner.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("dial-serve-{w}"))
                    .spawn(move || worker_loop(&inner, &rx))
                    .expect("spawn serve worker")
            })
            .collect();
        QueryService { inner, tx: Some(tx), rx, workers, default_deadline: cfg.default_deadline }
    }

    /// Offer one query for service. Never blocks: a full queue answers
    /// [`ServeError::Overloaded`] right away. `deadline` bounds the
    /// *queue wait* (falling back to the config default); the returned
    /// [`Ticket`] resolves with hits, a shed, or a shutdown notice.
    ///
    /// The payload converts into one shared `Arc<[f32]>` allocation
    /// (callers holding `Arc<[f32]>` pools submit repeat queries with no
    /// allocation at all) that admission, coalescing, and the cache key
    /// then share.
    pub fn submit(
        &self,
        query: impl Into<Arc<[f32]>>,
        k: usize,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        let query: Arc<[f32]> = query.into();
        if query.len() != self.inner.dim {
            return Err(ServeError::BadRequest(format!(
                "query has {} values, index dimension is {}",
                query.len(),
                self.inner.dim
            )));
        }
        if k == 0 {
            return Err(ServeError::BadRequest("k must be at least 1".into()));
        }
        let tx = match &self.tx {
            Some(tx) => tx,
            None => return Err(ServeError::Shutdown),
        };
        let deadline_ns = deadline.or(self.default_deadline).map(|d| d.as_nanos() as u64);
        let slot = Slot::new();
        let req = Request {
            query,
            k,
            admitted_ns: self.inner.clock.now_ns(),
            deadline_ns,
            slot: slot.clone(),
        };
        self.inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(req) {
            Ok(()) => Ok(Ticket { slot }),
            Err(TrySendError::Full(req)) => {
                self.inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                // Answer the (never-returned) ticket so the Drop below is
                // the documented Shutdown-on-drop no-op, then discard.
                req.slot.fill(Err(ServeError::Overloaded));
                Err(ServeError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Shutdown),
        }
    }

    /// Manual-mode dispatch: drain everything currently queued on the
    /// caller's thread, in coalesced batches, and return how many
    /// requests were resolved (served + shed). With `workers > 0` this
    /// merely competes with the pool; it exists so `workers: 0` tests
    /// control exactly when dispatch happens relative to a
    /// [`ManualClock`].
    pub fn pump(&self) -> usize {
        let mut resolved = 0;
        loop {
            let batch = take_batch(&self.rx, self.inner.batch_max, false);
            if batch.is_empty() {
                return resolved;
            }
            resolved += batch.len();
            self.inner.dispatch(batch);
        }
    }

    /// The current index generation. Bumped by every mutation
    /// ([`QueryService::install_index`], [`QueryService::refresh`],
    /// [`QueryService::set_nprobe`], [`QueryService::set_ef_search`]);
    /// cache entries from older generations are never served.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Acquire)
    }

    /// Hot-swap the served index for a freshly built one — the
    /// zero-downtime "serve round *r* while round *r+1* trains"
    /// hand-off: in-flight scans finish against the old index, the swap
    /// installs between dispatches, and the generation bump invalidates
    /// every cached result in O(1), so the next identical query rescans
    /// against the new index. The new index must have the dimensionality
    /// the service was built with (admission validates against it
    /// lock-free); metric and family may change freely.
    pub fn install_index(&self, index: Box<dyn AnnIndex>) -> Result<(), ServeError> {
        if index.dim() != self.inner.dim {
            return Err(ServeError::BadRequest(format!(
                "installed index has dimension {}, service serves {}",
                index.dim(),
                self.inner.dim
            )));
        }
        let mut guard = self.inner.index.write().unwrap();
        *guard = index;
        self.inner.generation.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// In-place [`AnnIndex::refresh`] of the served index under the
    /// write lock, returning whether the family applied it. Any call
    /// that may have mutated the index bumps the generation (a no-op
    /// refresh — nothing changed, nothing appended — does not). On a
    /// `false` return the family declined and the index may be
    /// partially updated (the `AnnIndex::refresh` contract):
    /// [`QueryService::install_index`] a rebuilt index before serving
    /// further traffic.
    pub fn refresh(&self, data: &[f32], changed: &[u32]) -> bool {
        let mut guard = self.inner.index.write().unwrap();
        let before_len = guard.len();
        let applied = guard.refresh(data, changed);
        let mutated = !applied || !changed.is_empty() || guard.len() != before_len;
        if mutated {
            self.inner.generation.fetch_add(1, Ordering::Release);
        }
        applied
    }

    /// Retune the served index's IVF probe width
    /// ([`AnnIndex::set_nprobe`]) under the write lock. Returns `false`
    /// — and bumps nothing — when the index has no such knob; an applied
    /// retune bumps the generation (a different width ranks different
    /// candidates, so cached results are stale).
    pub fn set_nprobe(&self, nprobe: usize) -> bool {
        let mut guard = self.inner.index.write().unwrap();
        let applied = guard.set_nprobe(nprobe);
        if applied {
            self.inner.generation.fetch_add(1, Ordering::Release);
        }
        applied
    }

    /// Retune the served index's HNSW beam width
    /// ([`AnnIndex::set_ef_search`]) under the write lock; generation
    /// semantics as [`QueryService::set_nprobe`].
    pub fn set_ef_search(&self, ef: usize) -> bool {
        let mut guard = self.inner.index.write().unwrap();
        let applied = guard.set_ef_search(ef);
        if applied {
            self.inner.generation.fetch_add(1, Ordering::Release);
        }
        applied
    }

    /// Counter snapshot (monotone; see [`ServeStats`]).
    pub fn stats(&self) -> ServeStats {
        let s = &self.inner.stats;
        let shard = self.shard_stats().map(|snap| snap.total()).unwrap_or_default();
        ServeStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            served: s.served.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            scanned: s.scanned.load(Ordering::Relaxed),
            hits: s.hits.load(Ordering::Relaxed),
            misses: s.misses.load(Ordering::Relaxed),
            coalesced: s.coalesced.load(Ordering::Relaxed),
            evictions: s.evictions.load(Ordering::Relaxed),
            invalidations: s.invalidations.load(Ordering::Relaxed),
            shard_probes: shard.probes,
            hedges_fired: shard.hedges_fired,
            hedges_won: shard.hedges_won,
        }
    }

    /// Per-shard probe/hedge/failover counters of the served index, or
    /// `None` when it has no shard fan-out (single-machine families).
    /// Counters live on the index itself, so an
    /// [`QueryService::install_index`] hot-swap starts them over.
    pub fn shard_stats(&self) -> Option<ShardStatsSnapshot> {
        self.inner.index.read().unwrap().shard_stats()
    }

    /// The worker-count the service was built with (0 = manual mode).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Stop admitting, drain the queue (workers finish in-flight
    /// requests; manual mode pumps the remainder inline), and return
    /// the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        // Dropping the last Sender closes the queue: worker `recv` ends
        // after the drain.
        self.tx = None;
        if self.workers.is_empty() {
            self.pump();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.close();
    }
}

fn worker_loop(inner: &Inner, rx: &Mutex<pipeline::Receiver<Request>>) {
    loop {
        let batch = take_batch(rx, inner.batch_max, true);
        if batch.is_empty() {
            return;
        }
        inner.dispatch(batch);
    }
}

/// Take one coalesced batch off the queue: the oldest waiting request
/// (blocking for it when `block`), then greedily whatever else is
/// already queued, up to `batch_max`. Holding the receiver lock across
/// the grab means exactly one worker forms each batch; the scan itself
/// runs unlocked.
fn take_batch(
    rx: &Mutex<pipeline::Receiver<Request>>,
    batch_max: usize,
    block: bool,
) -> Vec<Request> {
    let rx = rx.lock().unwrap();
    let first = if block {
        match rx.recv() {
            Some(r) => r,
            None => return Vec::new(),
        }
    } else {
        match rx.try_recv() {
            Ok(r) => r,
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return Vec::new(),
        }
    };
    let mut batch = Vec::with_capacity(batch_max);
    batch.push(first);
    while batch.len() < batch_max {
        match rx.try_recv() {
            Ok(r) => batch.push(r),
            Err(_) => break,
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use dial_ann::{FlatIndex, IndexSpec, IvfParams, Metric};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::AtomicUsize;

    fn flat(n: usize, dim: usize, seed: u64) -> FlatIndex {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut ix = FlatIndex::new(dim, Metric::L2);
        ix.add_batch(&rows);
        ix
    }

    fn queries(nq: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..nq).map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect()
    }

    fn manual_cfg(queue_capacity: usize) -> ServeConfig {
        ServeConfig {
            queue_capacity,
            batch_max: 64,
            workers: 0,
            default_deadline: None,
            ..ServeConfig::default()
        }
    }

    fn manual_service(
        index: Box<dyn AnnIndex>,
        queue_capacity: usize,
    ) -> (QueryService, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let svc = QueryService::with_clock(index, manual_cfg(queue_capacity), clock.clone());
        (svc, clock)
    }

    /// Delegating wrapper that counts every query row the index actually
    /// scans — the instrument proving shed requests never reach the scan
    /// and cache hits / coalesced serves skip it.
    struct CountingIndex {
        inner: FlatIndex,
        queries_scanned: Arc<AtomicUsize>,
    }

    impl CountingIndex {
        fn over(inner: FlatIndex) -> (Box<dyn AnnIndex>, Arc<AtomicUsize>) {
            let scanned = Arc::new(AtomicUsize::new(0));
            (Box::new(CountingIndex { inner, queries_scanned: scanned.clone() }), scanned)
        }
    }

    impl AnnIndex for CountingIndex {
        fn dim(&self) -> usize {
            AnnIndex::dim(&self.inner)
        }
        fn len(&self) -> usize {
            AnnIndex::len(&self.inner)
        }
        fn metric(&self) -> Metric {
            AnnIndex::metric(&self.inner)
        }
        fn add_batch(&mut self, flat: &[f32]) {
            AnnIndex::add_batch(&mut self.inner, flat)
        }
        fn refresh(&mut self, data: &[f32], changed: &[u32]) -> bool {
            self.inner.refresh(data, changed)
        }
        fn can_refresh(&self) -> bool {
            true
        }
        fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
            self.queries_scanned.fetch_add(1, Ordering::SeqCst);
            self.inner.search(query, k)
        }
        fn search_batch(&self, queries: &[f32], k: usize) -> Vec<Vec<Hit>> {
            self.queries_scanned
                .fetch_add(queries.len() / AnnIndex::dim(&self.inner), Ordering::SeqCst);
            AnnIndex::search_batch(&self.inner, queries, k)
        }
        fn snapshot_blob(&self) -> (u8, Vec<u8>) {
            self.inner.snapshot_blob()
        }
    }

    #[test]
    fn shed_counts_are_exact_under_a_manual_clock() {
        let (svc, clock) = manual_service(Box::new(flat(100, 4, 1)), 64);
        let q = queries(6, 4, 2);
        // Three requests with a 100 ns deadline, three without any.
        let doomed: Vec<Ticket> = q[..3]
            .iter()
            .map(|v| svc.submit(v.clone(), 3, Some(Duration::from_nanos(100))).unwrap())
            .collect();
        let safe: Vec<Ticket> =
            q[3..].iter().map(|v| svc.submit(v.clone(), 3, None).unwrap()).collect();
        clock.advance_ns(101); // strictly past the deadline
        assert_eq!(svc.pump(), 6);
        for t in doomed {
            assert_eq!(t.wait(), Err(ServeError::DeadlineExceeded { waited_ns: 101 }));
        }
        for t in safe {
            assert!(t.wait().is_ok());
        }
        let s = svc.stats();
        assert_eq!((s.submitted, s.shed, s.served, s.rejected), (6, 3, 3, 0));
        assert!(s.accounting_closes());
    }

    #[test]
    fn deadline_boundary_is_strict_waited_must_exceed() {
        let (svc, clock) = manual_service(Box::new(flat(50, 4, 3)), 16);
        let q = queries(1, 4, 4)[0].clone();
        let t = svc.submit(q, 2, Some(Duration::from_nanos(100))).unwrap();
        clock.advance_ns(100); // waited == deadline: still in budget
        svc.pump();
        assert!(t.wait().is_ok(), "waited == deadline must be served, not shed");
        assert_eq!(svc.stats().shed, 0);
    }

    #[test]
    fn shed_requests_never_touch_the_index() {
        let (ix, scanned) = CountingIndex::over(flat(100, 4, 5));
        let (svc, clock) = manual_service(ix, 64);
        let q = queries(10, 4, 6);
        // 7 requests already past deadline at dispatch, 3 alive.
        for v in &q[..7] {
            svc.submit(v.clone(), 3, Some(Duration::from_nanos(10))).unwrap();
        }
        for v in &q[7..] {
            svc.submit(v.clone(), 3, None).unwrap();
        }
        clock.advance_ns(1_000);
        svc.pump();
        assert_eq!(
            scanned.load(Ordering::SeqCst),
            3,
            "a shed request must contribute zero queries to the scan"
        );
        let s = svc.stats();
        assert_eq!((s.shed, s.served), (7, 3));
    }

    #[test]
    fn full_queue_rejects_with_overloaded_and_counts_it() {
        let (svc, _clock) = manual_service(Box::new(flat(50, 4, 7)), 2);
        let q = queries(3, 4, 8);
        svc.submit(q[0].clone(), 1, None).unwrap();
        svc.submit(q[1].clone(), 1, None).unwrap();
        assert_eq!(svc.submit(q[2].clone(), 1, None).err(), Some(ServeError::Overloaded));
        let s = svc.stats();
        assert_eq!((s.submitted, s.rejected), (3, 1));
        // Draining frees the queue for new admissions.
        svc.pump();
        assert!(svc.submit(q[2].clone(), 1, None).is_ok());
    }

    #[test]
    fn bad_requests_are_refused_before_admission() {
        let (svc, _clock) = manual_service(Box::new(flat(50, 4, 9)), 16);
        assert!(matches!(svc.submit(vec![0.0; 3], 1, None), Err(ServeError::BadRequest(_))));
        assert!(matches!(svc.submit(vec![0.0; 4], 0, None), Err(ServeError::BadRequest(_))));
        assert_eq!(svc.stats().submitted, 0, "refused requests never count as submitted");
    }

    #[test]
    fn coalesced_batches_match_direct_single_query_search() {
        // The bitwise guarantee, across manual mode and several pool
        // sizes: whatever batches form, every response equals a direct
        // `search` on the same index.
        let dim = 8;
        let reference = flat(300, dim, 10);
        let qs = queries(97, dim, 11);
        let ks: Vec<usize> = (0..qs.len()).map(|i| 1 + i % 7).collect();
        let expected: Vec<Vec<Hit>> =
            qs.iter().zip(&ks).map(|(q, &k)| reference.search(q, k)).collect();
        for workers in [0usize, 1, 2, 4] {
            let svc = QueryService::new(
                Box::new(flat(300, dim, 10)),
                ServeConfig {
                    queue_capacity: 128,
                    batch_max: 16,
                    workers,
                    default_deadline: None,
                    ..ServeConfig::default()
                },
            );
            let tickets: Vec<Ticket> =
                qs.iter().zip(&ks).map(|(q, &k)| svc.submit(q.clone(), k, None).unwrap()).collect();
            if workers == 0 {
                svc.pump();
            }
            let stats = svc.shutdown();
            assert_eq!(stats.served, qs.len() as u64);
            assert!(stats.accounting_closes(), "{stats:?}");
            for (i, t) in tickets.into_iter().enumerate() {
                let resp = t.wait().unwrap();
                assert_eq!(resp.hits.len(), expected[i].len(), "query {i}, {workers} workers");
                for (got, want) in resp.hits.iter().zip(&expected[i]) {
                    assert_eq!(got.id, want.id, "query {i}, {workers} workers");
                    assert_eq!(
                        got.distance.to_bits(),
                        want.distance.to_bits(),
                        "query {i}, {workers} workers: distance not bitwise identical"
                    );
                }
            }
        }
    }

    #[test]
    fn shutdown_drains_the_queue_before_returning() {
        let svc = QueryService::new(
            Box::new(flat(100, 4, 12)),
            ServeConfig {
                queue_capacity: 64,
                batch_max: 8,
                workers: 2,
                default_deadline: None,
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<Ticket> =
            queries(40, 4, 13).into_iter().map(|q| svc.submit(q, 5, None).unwrap()).collect();
        let stats = svc.shutdown();
        assert_eq!(stats.served + stats.shed, 40, "every admitted request resolves");
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn submit_after_shutdown_reports_shutdown() {
        let (svc, _clock) = manual_service(Box::new(flat(20, 4, 14)), 8);
        // Shutdown consumes the service; emulate a racing submitter by
        // checking the accounting invariant instead on a fresh service.
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, stats.served + stats.shed + stats.rejected);
    }

    #[test]
    fn batch_max_bounds_every_search_batch_call() {
        let (svc, _clock) = manual_service(Box::new(flat(100, 4, 15)), 64);
        // 10 distinct queries, batch_max 64 → manual pump coalesces all
        // ten into one batch (single k), so exactly one scan call.
        for q in queries(10, 4, 16) {
            svc.submit(q, 3, None).unwrap();
        }
        svc.pump();
        assert_eq!(svc.stats().batches, 1, "one k-group, one coalesced scan");
    }

    #[test]
    fn repeat_queries_hit_the_cache_and_skip_the_scan() {
        let (ix, scanned) = CountingIndex::over(flat(200, 4, 17));
        let (svc, _clock) = manual_service(ix, 64);
        let q = queries(1, 4, 18)[0].clone();
        let first = svc.submit(q.clone(), 5, None).unwrap();
        svc.pump();
        let t2 = svc.submit(q.clone(), 5, None).unwrap();
        let t3 = svc.submit(q.clone(), 5, None).unwrap();
        svc.pump();
        let want = first.wait().unwrap().hits;
        for t in [t2, t3] {
            let got = t.wait().unwrap().hits;
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!((g.id, g.distance.to_bits()), (w.id, w.distance.to_bits()));
            }
        }
        assert_eq!(scanned.load(Ordering::SeqCst), 1, "repeats must not rescan");
        let s = svc.stats();
        assert_eq!((s.scanned, s.hits, s.coalesced), (1, 2, 0));
        assert!(s.accounting_closes());
        // Same bits at a different k is a different key: it rescans.
        svc.submit(q, 4, None).unwrap();
        svc.pump();
        assert_eq!(scanned.load(Ordering::SeqCst), 2, "k participates in the cache key");
    }

    #[test]
    fn in_batch_duplicates_collapse_to_one_scan_even_without_a_cache() {
        let (ix, scanned) = CountingIndex::over(flat(200, 4, 19));
        let clock = Arc::new(ManualClock::new());
        let svc =
            QueryService::with_clock(ix, ServeConfig { cache_entries: 0, ..manual_cfg(64) }, clock);
        let q = queries(1, 4, 20)[0].clone();
        let tickets: Vec<Ticket> =
            (0..5).map(|_| svc.submit(q.clone(), 3, None).unwrap()).collect();
        svc.pump();
        assert_eq!(scanned.load(Ordering::SeqCst), 1, "five identical requests, one scan");
        let want = flat(200, 4, 19).search(&q, 3);
        for t in tickets {
            let got = t.wait().unwrap().hits;
            assert_eq!(got, want);
        }
        let s = svc.stats();
        assert_eq!((s.served, s.scanned, s.hits, s.coalesced), (5, 1, 0, 4));
        assert!(s.accounting_closes());
        // With the cache off, the next identical query rescans.
        svc.submit(q, 3, None).unwrap();
        svc.pump();
        assert_eq!(scanned.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn serving_a_sharded_index_surfaces_shard_probe_counters() {
        let dim = 4;
        let mut rng = StdRng::seed_from_u64(31);
        let rows: Vec<f32> = (0..60 * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let sharded = IndexSpec::Flat.sharded(3).build(&rows, dim, Metric::L2);
        let (svc, _clock) = manual_service(sharded, 64);
        assert_eq!(svc.stats().shard_probes, 0);
        for q in queries(5, dim, 32) {
            svc.submit(q, 4, None).unwrap();
        }
        svc.pump();
        let s = svc.stats();
        assert!(s.accounting_closes());
        assert_eq!(s.served, 5);
        assert_eq!(s.shard_probes, 15, "5 queries fanned to 3 shards");
        assert_eq!(s.hedges_fired, 0, "local shards never hedge");
        let snap = svc.shard_stats().expect("sharded index exposes per-shard stats");
        assert_eq!(snap.shards.len(), 3);
        assert!((snap.imbalance() - 1.0).abs() < 1e-12);

        // Hot-swapping an unsharded index removes the fan-out: the
        // shard columns read zero again, the serve counters persist.
        svc.install_index(Box::new(flat(60, dim, 33))).unwrap();
        let s = svc.stats();
        assert_eq!(s.served, 5);
        assert_eq!(s.shard_probes, 0);
        assert!(svc.shard_stats().is_none());
    }

    #[test]
    fn install_index_bumps_the_generation_and_the_next_repeat_rescans() {
        let (ix, scanned_a) = CountingIndex::over(flat(120, 4, 21));
        let (svc, _clock) = manual_service(ix, 64);
        let q = queries(1, 4, 22)[0].clone();
        svc.submit(q.clone(), 5, None).unwrap();
        svc.pump();
        svc.submit(q.clone(), 5, None).unwrap();
        svc.pump();
        assert_eq!(scanned_a.load(Ordering::SeqCst), 1, "second request is a cache hit");
        assert_eq!(svc.stats().hits, 1);
        assert_eq!(svc.generation(), 0);

        // Hot-swap to an index with *different* contents.
        let (replacement, scanned_b) = CountingIndex::over(flat(120, 4, 23));
        let truth_after: Vec<Hit> = {
            let reference = flat(120, 4, 23);
            reference.search(&q, 5)
        };
        scanned_b.store(0, Ordering::SeqCst);
        svc.install_index(replacement).unwrap();
        assert_eq!(svc.generation(), 1, "install_index bumps the generation");

        let t = svc.submit(q.clone(), 5, None).unwrap();
        svc.pump();
        let got = t.wait().unwrap().hits;
        assert_eq!(scanned_b.load(Ordering::SeqCst), 1, "post-swap repeat must rescan");
        assert_eq!(got.len(), truth_after.len());
        for (g, w) in got.iter().zip(&truth_after) {
            assert_eq!(
                (g.id, g.distance.to_bits()),
                (w.id, w.distance.to_bits()),
                "post-swap response must come from the NEW index, never the stale cache"
            );
        }
        let s = svc.stats();
        assert_eq!(s.invalidations, 1, "the stale entry was removed on discovery");
        assert_eq!(s.hits, 1, "no hit was served across the swap");
        assert!(s.accounting_closes());
    }

    #[test]
    fn install_index_rejects_a_dimension_mismatch() {
        let (svc, _clock) = manual_service(Box::new(flat(50, 4, 24)), 16);
        let wrong = Box::new(flat(50, 6, 24));
        assert!(matches!(svc.install_index(wrong), Err(ServeError::BadRequest(_))));
        assert_eq!(svc.generation(), 0, "a rejected install must not bump the generation");
    }

    #[test]
    fn refresh_invalidates_the_cache_and_serves_the_new_rows() {
        let dim = 4;
        let mut rows: Vec<f32> = vec![0.0; 10 * dim];
        for (i, r) in rows.chunks_mut(dim).enumerate() {
            r[0] = i as f32;
        }
        let mut ix = FlatIndex::new(dim, Metric::L2);
        ix.add_batch(&rows);
        let (svc, _clock) = manual_service(Box::new(ix), 16);
        let q = vec![0.25f32, 0.0, 0.0, 0.0];
        let t = svc.submit(q.clone(), 1, None).unwrap();
        svc.pump();
        assert_eq!(t.wait().unwrap().hits[0].id, 0);

        // Overwrite row 3 to sit exactly on the query point.
        rows[3 * dim] = 0.25;
        assert!(svc.refresh(&rows, &[3]));
        assert_eq!(svc.generation(), 1, "an applied refresh bumps the generation");
        let t = svc.submit(q.clone(), 1, None).unwrap();
        svc.pump();
        let hit = t.wait().unwrap().hits[0];
        assert_eq!((hit.id, hit.distance), (3, 0.0), "the refreshed row must be served");

        // A no-op refresh (nothing changed, nothing appended) must not
        // invalidate the cache.
        assert!(svc.refresh(&rows, &[]));
        assert_eq!(svc.generation(), 1, "a no-op refresh leaves the generation alone");
        let t = svc.submit(q, 1, None).unwrap();
        svc.pump();
        assert!(t.wait().is_ok());
        assert_eq!(svc.stats().hits, 1, "the cached entry survived the no-op refresh");
    }

    #[test]
    fn knob_changes_bump_the_generation_only_when_applied() {
        let dim = 4;
        let mut rng = StdRng::seed_from_u64(25);
        let rows: Vec<f32> = (0..300 * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let spec = IndexSpec::IvfFlat(IvfParams { nlist: 8, nprobe: 8, ..Default::default() });
        let (svc, _clock) = manual_service(spec.build(&rows, dim, Metric::L2), 16);
        let q: Vec<f32> = rows[..dim].to_vec();
        svc.submit(q.clone(), 3, None).unwrap();
        svc.pump();
        assert!(svc.set_nprobe(2), "IVF index must accept the probe-width knob");
        assert_eq!(svc.generation(), 1);
        assert!(!svc.set_ef_search(10), "IVF has no beam knob");
        assert_eq!(svc.generation(), 1, "a refused knob must not bump the generation");
        // The retuned width is what the rescan sees.
        let t = svc.submit(q.clone(), 3, None).unwrap();
        svc.pump();
        let narrow = {
            let mut reference = spec.build(&rows, dim, Metric::L2);
            reference.set_nprobe(2);
            reference.search(&q, 3)
        };
        assert_eq!(t.wait().unwrap().hits, narrow);
        assert_eq!(svc.stats().hits, 0, "the pre-retune entry was never served");
    }

    #[test]
    fn eviction_churn_at_tiny_capacity_stays_correct() {
        let dim = 4;
        let reference = flat(150, dim, 26);
        let clock = Arc::new(ManualClock::new());
        let svc = QueryService::with_clock(
            Box::new(flat(150, dim, 26)),
            ServeConfig { cache_entries: 2, cache_bytes: 0, ..manual_cfg(256) },
            clock,
        );
        let qs = queries(12, dim, 27);
        // Three passes over 12 distinct queries through a 2-entry cache:
        // heavy eviction churn, every response still bitwise exact.
        for _pass in 0..3 {
            let tickets: Vec<(usize, Ticket)> = qs
                .iter()
                .enumerate()
                .map(|(i, q)| (i, svc.submit(q.clone(), 4, None).unwrap()))
                .collect();
            svc.pump();
            for (i, t) in tickets {
                let got = t.wait().unwrap().hits;
                let want = reference.search(&qs[i], 4);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!((g.id, g.distance.to_bits()), (w.id, w.distance.to_bits()));
                }
            }
        }
        let s = svc.stats();
        assert!(s.evictions > 0, "a 2-entry cache under 12 keys must evict: {s:?}");
        assert!(s.accounting_closes(), "{s:?}");
    }

    #[test]
    fn a_tiny_byte_budget_disables_caching_but_not_correctness() {
        let (ix, scanned) = CountingIndex::over(flat(100, 4, 28));
        let clock = Arc::new(ManualClock::new());
        let svc = QueryService::with_clock(
            ix,
            ServeConfig { cache_entries: 64, cache_bytes: 1, ..manual_cfg(64) },
            clock,
        );
        let q = queries(1, 4, 29)[0].clone();
        for _ in 0..3 {
            let t = svc.submit(q.clone(), 2, None).unwrap();
            svc.pump();
            assert!(t.wait().is_ok());
        }
        assert_eq!(scanned.load(Ordering::SeqCst), 3, "nothing fits the byte budget");
        let s = svc.stats();
        assert_eq!((s.hits, s.scanned), (0, 3));
        assert!(s.accounting_closes());
    }
}
