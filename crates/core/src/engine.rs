//! The persistent committee retrieval engine.
//!
//! [`index_by_committee`](crate::candidates::index_by_committee) rebuilds
//! every member's ANN index from scratch each round and probes members
//! strictly in sequence, so indexing latency is paid in full even when
//! the frozen trunk barely moves between AL rounds. [`RetrievalEngine`]
//! is the stateful replacement the AL loop keeps alive across rounds; it
//! attacks both halves of that cost:
//!
//! 1. **Incremental maintenance.** The engine caches each member's
//!    previous-round embedding rows next to its built index. At the next
//!    round it measures the drift — the mean cosine shift of the new
//!    rows against the cached ones — and, when the drift is at or below
//!    [`DialConfig::incremental_threshold`](crate::config::DialConfig),
//!    updates the live index in place through [`AnnIndex::refresh`]
//!    (bitwise row overwrite + `add_batch` for appended rows) instead of
//!    rebuilding. Families that cannot update in place (PQ, HNSW)
//!    decline the refresh and fall back to a from-scratch build, as does
//!    any member whose drift exceeds the threshold. At the default
//!    threshold of `0.0` the incremental path only engages when no
//!    stored row changed at all (the drift measure is scale-invariant,
//!    so a strictly-zero threshold refuses overwrites outright). With
//!    the row set also unchanged — the AL-loop case, where the indexed
//!    list never grows between rounds — the refresh is a no-op and
//!    therefore exact for every family; appended rows ride the family's
//!    `add_batch` contract instead (bitwise a rebuild for flat
//!    families, assign-against-trained-structures for quantized ones).
//!    The changed-row set is computed by *bitwise* comparison, never
//!    from the drift measure, so an engaged refresh stores exactly the
//!    new rows.
//!
//! 2. **Pipelined build/probe.** Member indexes stream from a builder
//!    thread to the probing thread through a bounded SPSC channel
//!    ([`rayon::pipeline`]), so member *i*'s (sharded, parallel) build
//!    overlaps member *i−1*'s `search_batch` probes — the dominant
//!    latency term is hidden instead of shrunk. Per-member hit lists are
//!    kept in member-id-tagged slots and concatenated in member order
//!    before the [`CandidateSet::from_scored`] merge, so the pipelined
//!    candidate set is identical to the sequential one
//!    (`pipeline_depth = 0` runs the strictly sequential path).

use crate::candidates::{probe_blocked, Candidate, CandidateSet};
use crate::encode::ListEmbeddings;
use dial_ann::{save_member_blob, AnnIndex, FlatIndex, Hit, IndexSpec, Metric, RowFormat};
use rayon::pipeline;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Instant;

/// One committee member's persistent retrieval state: the live index and
/// the packed embedding rows it currently stores (the drift baseline and
/// changed-row reference for the next round).
struct MemberState {
    index: Box<dyn AnnIndex>,
    rows: Vec<f32>,
}

/// How one member's index came to be this round.
struct BuildInfo {
    secs: f64,
    incremental: bool,
    drift: f64,
    /// An in-place refresh retrained the member's coarse quantizer
    /// (growth-triggered, [`dial_ann::RETRAIN_GROWTH`]): the probe-width
    /// ceiling changed under the calibration, which must rerun.
    retrained: bool,
}

/// Aggregate timings and reuse counters of the engine's last round.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineRoundStats {
    /// Seconds spent building or refreshing member indexes (summed over
    /// members; runs on the builder thread when pipelined).
    pub build_secs: f64,
    /// Seconds spent probing member indexes (summed over members; always
    /// on the calling thread).
    pub probe_secs: f64,
    /// Wall-clock seconds of the whole retrieval. With the pipeline on,
    /// `build_secs + probe_secs > wall_secs` measures the overlap won.
    pub wall_secs: f64,
    /// Members whose index was refreshed in place.
    pub incremental_members: usize,
    /// Members rebuilt from scratch (drift above threshold, first round,
    /// shape change, or a family that declines in-place refresh).
    pub rebuilt_members: usize,
    /// Mean embedding drift (cosine shift) across members that had a
    /// previous round to compare against.
    pub mean_drift: f64,
}

/// Calibration knobs of the observed-metrics auto-tuner (see
/// [`RetrievalEngine::with_tuning`]).
#[derive(Debug, Clone, Copy)]
pub struct TuneConfig {
    /// Recall@k the `nprobe` sweep aims for before it stops climbing.
    pub recall_target: f64,
    /// Held-out probes of `S` measured per sweep step (clamped to `|S|`).
    pub sample: usize,
    /// Marginal-recall flattening threshold: the sweep stops doubling
    /// `nprobe` once one doubling buys less recall than this.
    pub epsilon: f64,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig { recall_target: 0.95, sample: 256, epsilon: 0.01 }
    }
}

/// One measured step of the calibration sweep.
#[derive(Debug, Clone, Copy)]
pub struct TuneStep {
    /// The knob width this step probed at (`nprobe` for IVF-backed
    /// specs, `ef_search` for HNSW-backed ones).
    pub width: usize,
    /// recall@k of the sample probes against the exact flat ground truth.
    pub recall: f64,
    /// Wall-clock nanoseconds per sample query at this width (recorded
    /// for the report; the *choice* never consults latency, so the tuner
    /// is deterministic on a noisy host).
    pub probe_ns_per_query: f64,
}

/// What the calibration stage measured and decided.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Which knob the sweep turned: `"nprobe"` (IVF-backed specs) or
    /// `"ef_search"` (HNSW-backed).
    pub knob: String,
    /// Largest meaningful width: the smallest per-shard `nlist` for the
    /// probe knob, the smallest shard's node count for the beam knob.
    pub ceiling: usize,
    /// The static heuristic's width — what the run would have used
    /// untuned.
    pub static_width: usize,
    /// The tuned width every member index now probes at.
    pub chosen_width: usize,
    /// Shard count of the calibrated spec.
    pub shards: usize,
    /// Held-out probes measured per step.
    pub sample: usize,
    /// Neighbours per probe the recall was measured at.
    pub k: usize,
    /// Measured recall@k at `static_width` / at `chosen_width`.
    pub static_recall: f64,
    pub chosen_recall: f64,
    /// Every measured step, ascending by width.
    pub steps: Vec<TuneStep>,
    /// Wall-clock cost of the whole calibration (ground truth + build +
    /// sweep).
    pub calibrate_secs: f64,
}

/// Persistent, pipelined Index-By-Committee retrieval (see the module
/// docs). Create once per AL run and call
/// [`RetrievalEngine::retrieve_committee`] /
/// [`RetrievalEngine::retrieve_single`] each round.
pub struct RetrievalEngine {
    spec: IndexSpec,
    incremental_threshold: f64,
    pipeline_depth: usize,
    /// Storage format for member-index scan rows (see
    /// [`RetrievalEngine::set_rows`]); calibration ground truth always
    /// scans the uncompressed f32 rows.
    rows: RowFormat,
    members: Vec<MemberState>,
    last: EngineRoundStats,
    tune: Option<TuneConfig>,
    /// Calibration already ran against the current quantizer generation;
    /// cleared by [`RetrievalEngine::reset`] and by quantizer-
    /// invalidating rebuilds (a member with prior state rebuilt from
    /// scratch, i.e. retrained on drifted rows).
    calibrated: bool,
    /// The spec's knob width before any calibration touched it — the
    /// static heuristic's width, and the recall floor every calibration
    /// (including recalibrations after the spec was already tuned)
    /// measures itself against.
    baseline_width: Option<usize>,
    tuning: Option<TuningOutcome>,
    /// Directory for member snapshots (see
    /// [`RetrievalEngine::set_snapshot`]); `None` disables persistence.
    snapshot_dir: Option<PathBuf>,
    /// The embedding width snapshots were validated against at load.
    snapshot_dim: usize,
    /// First-round member snapshots already written (or handed to the
    /// saver thread) for this engine lifetime.
    snapshot_saved: bool,
    /// Background snapshot loader: spawned by `set_snapshot` so the file
    /// reads and structural validation overlap whatever the caller does
    /// before the first retrieval (round-0 committee training in the AL
    /// loop); joined — double-buffer style, between probe rounds, never
    /// mid-probe — at the first `retrieve`.
    loader: Option<JoinHandle<(Vec<MemberState>, f64)>>,
    /// Background snapshot saver: blobs are serialized on the retrieve
    /// thread (memory-speed), files are written here, overlapping the AL
    /// loop's selection stage.
    saver: Option<JoinHandle<f64>>,
    /// Seconds of background snapshot work (load + save) accumulated
    /// since the last [`RetrievalEngine::take_background_secs`].
    bg_secs: f64,
}

/// Mean cosine shift between two equal-length packed row sets: the
/// average over rows of `1 − cos(old_row, new_row)`, clamped at 0 per
/// row (rounding can push an unchanged row a few ulps negative). A pair
/// with both rows zero contributes 0; a pair where exactly one side is
/// zero contributes the full shift of 1.
fn mean_cosine_shift(old: &[f32], new: &[f32], dim: usize) -> f64 {
    debug_assert_eq!(old.len(), new.len());
    let n = old.len() / dim;
    if n == 0 {
        return 0.0;
    }
    let mut acc = 0.0f64;
    for (o, w) in old.chunks(dim).zip(new.chunks(dim)) {
        if o == w {
            // Bitwise-identical rows shift by exactly 0 — the computed
            // `1 − dot/(‖o‖·‖w‖)` can land a few ulps off zero, which
            // would wrongly disqualify the drift = 0 incremental path at
            // the default threshold of 0.0.
            continue;
        }
        let (mut dot, mut no, mut nw) = (0.0f64, 0.0f64, 0.0f64);
        for (&a, &b) in o.iter().zip(w) {
            dot += a as f64 * b as f64;
            no += (a as f64) * (a as f64);
            nw += (b as f64) * (b as f64);
        }
        let shift = match (no == 0.0, nw == 0.0) {
            (true, true) => 0.0,
            (true, false) | (false, true) => 1.0,
            (false, false) => 1.0 - dot / (no.sqrt() * nw.sqrt()),
        };
        acc += shift.max(0.0);
    }
    acc / n as f64
}

/// Recall@k of `hits` against the exact ground truth `truth` (id overlap
/// per query, averaged over the sample; per-query denominator is
/// `min(k, |truth|)`). The one recall definition shared by the engine's
/// calibration stage and the bench harness's regression gate — they must
/// never measure differently.
pub fn recall_at_k(hits: &[Vec<Hit>], truth: &[Vec<Hit>], k: usize) -> f64 {
    let mut overlap = 0usize;
    let mut total = 0usize;
    for (h, t) in hits.iter().zip(truth) {
        let t_ids: std::collections::HashSet<u32> = t.iter().map(|x| x.id).collect();
        overlap += h.iter().filter(|x| t_ids.contains(&x.id)).count();
        total += k.min(t.len());
    }
    overlap as f64 / total.max(1) as f64
}

/// Bring one member's index in line with `view`: refresh in place when
/// the prior state is compatible and the drift allows it, build from
/// scratch otherwise. Runs on the builder thread when pipelined.
fn prepare_member(
    spec: &IndexSpec,
    threshold: f64,
    rows: RowFormat,
    prev: Option<MemberState>,
    prebuilt: Option<MemberState>,
    view: &[f32],
    dim: usize,
) -> (MemberState, BuildInfo) {
    let t0 = Instant::now();
    if prev.is_none() {
        if let Some(state) = prebuilt {
            // The calibration stage already built this exact index over
            // `view` this round (and left it at the tuned width); reuse
            // it as the member's from-scratch build instead of paying
            // the same k-means training twice. Its real cost is
            // recorded in `TuningOutcome::calibrate_secs`.
            debug_assert_eq!(state.rows, view);
            let info = BuildInfo {
                secs: t0.elapsed().as_secs_f64(),
                incremental: false,
                drift: 0.0,
                retrained: false,
            };
            return (state, info);
        }
    }
    let rebuild =
        || MemberState { index: spec.build_rows(view, dim, Metric::L2, rows), rows: view.to_vec() };
    let mut info = BuildInfo { secs: 0.0, incremental: false, drift: 0.0, retrained: false };
    let state = match prev {
        // Compatible prior state: same width, no rows dropped (an index
        // never shrinks in place), and actually populated.
        Some(mut st)
            if st.index.dim() == dim && !st.rows.is_empty() && st.rows.len() <= view.len() =>
        {
            let gen_before = st.index.train_generation();
            info.drift = mean_cosine_shift(&st.rows, &view[..st.rows.len()], dim);
            let refreshed = info.drift <= threshold && {
                let n_old = st.rows.len() / dim;
                let changed: Vec<u32> = (0..n_old as u32)
                    .filter(|&r| {
                        let i = r as usize * dim;
                        view[i..i + dim] != st.rows[i..i + dim]
                    })
                    .collect();
                // The cosine drift is scale-invariant, so a row can be
                // *bitwise* changed (e.g. exactly doubled) at drift 0.
                // Overwriting such rows is exact for Flat but not for the
                // quantized families — so the "threshold 0.0 is always
                // exact" guarantee requires a strictly-zero threshold to
                // admit only appends, never overwrites. Positive
                // thresholds opt into approximate reuse explicitly.
                (changed.is_empty() || threshold > 0.0) && st.index.refresh(view, &changed)
            };
            if refreshed {
                info.incremental = true;
                // An append-heavy refresh can retrain the quantizer in
                // place (growth-triggered): the training-generation
                // counter catches it even when the retrained parameters
                // (nlist, ceiling) come out numerically identical — the
                // calibration measured on the old quantizer no longer
                // stands either way.
                info.retrained = st.index.train_generation() != gen_before;
                st.rows.clear();
                st.rows.extend_from_slice(view);
                st
            } else {
                rebuild()
            }
        }
        _ => rebuild(),
    };
    info.secs = t0.elapsed().as_secs_f64();
    (state, info)
}

impl RetrievalEngine {
    /// An engine retrieving through `spec`-built indexes. `spec` must be
    /// concrete (resolve [`IndexBackend::Auto`](crate::IndexBackend)
    /// first — [`DialConfig::index_spec_for`](crate::DialConfig) does).
    pub fn new(spec: IndexSpec, incremental_threshold: f64, pipeline_depth: usize) -> Self {
        RetrievalEngine {
            spec,
            incremental_threshold,
            pipeline_depth,
            rows: RowFormat::default(),
            members: Vec::new(),
            last: EngineRoundStats::default(),
            tune: None,
            calibrated: false,
            baseline_width: None,
            tuning: None,
            snapshot_dir: None,
            snapshot_dim: 0,
            snapshot_saved: false,
            loader: None,
            saver: None,
            bg_secs: 0.0,
        }
    }

    /// Store member-index scan rows in `format` (f32 by default; f16 or
    /// bf16 halve the scan footprint at a small recall cost the armed
    /// tuner observes and compensates for, since calibration ground
    /// truth always comes from an exact f32 scan). Changing the format
    /// drops cached member state — the stored rows are re-encoded on the
    /// next retrieval.
    pub fn set_rows(&mut self, format: RowFormat) {
        if format != self.rows {
            self.rows = format;
            self.reset();
        }
    }

    /// [`RetrievalEngine::new`] with the observed-metrics auto-tuner
    /// armed: before the first retrieval (and again after a
    /// quantizer-invalidating rebuild) the engine calibrates knobbed
    /// specs — IVF-backed ones through `nprobe`, HNSW-backed ones
    /// through `ef_search` — it probes a held-out sample of `S` against
    /// the exact flat ground truth over `R`, sweeps the knob upward
    /// until marginal recall@k flattens below `tune.epsilon` or
    /// `tune.recall_target` is met, and locks in the smallest width
    /// whose recall is at least
    /// `max(min(target, best swept), static default's recall)` — the
    /// tuner never chooses worse recall than the static heuristic it
    /// replaces, and prefers the cheapest width at equal recall. Specs
    /// without a knob (flat, PQ, or a sharded composite with any
    /// knobless shard) retrieve exactly as under
    /// [`RetrievalEngine::new`].
    pub fn with_tuning(
        spec: IndexSpec,
        incremental_threshold: f64,
        pipeline_depth: usize,
        tune: TuneConfig,
    ) -> Self {
        let mut engine = RetrievalEngine::new(spec, incremental_threshold, pipeline_depth);
        engine.baseline_width = engine.spec.knob_params().map(|(_, w)| w);
        engine.tune = Some(tune);
        engine
    }

    /// Arm member-snapshot persistence: after the first retrieval the
    /// engine writes each member's index + rows to
    /// `dir/member-<m>.snap` on a background thread, and — when
    /// `warm_start` is set — a background loader starts reading any
    /// snapshots already there *now*, so the file I/O and validation
    /// overlap whatever runs before the first retrieval (round-0
    /// committee training in the AL loop). Loaded members install as the
    /// double buffer's back side: they become each member's *previous*
    /// state, and the first retrieval's bitwise row comparison decides
    /// no-op-refresh versus rebuild exactly as a persistent engine's
    /// second round would — so a warm run retrieves bit-for-bit what a
    /// cold run does, whether the stored rows still match or not. Any
    /// rejected snapshot (corrupt, truncated, or written under a
    /// different spec / dim / row format) logs a warning and falls back
    /// to a cold build.
    ///
    /// Call after [`RetrievalEngine::set_rows`] — loading validates
    /// against the engine's current row format. `dim` is the embedding
    /// width the snapshots must carry.
    pub fn set_snapshot(&mut self, dir: Option<PathBuf>, warm_start: bool, dim: usize) {
        self.join_background();
        self.snapshot_dir = dir;
        self.snapshot_dim = dim;
        self.snapshot_saved = false;
        let Some(dir) = self.snapshot_dir.clone() else { return };
        if !warm_start || dim == 0 {
            return;
        }
        let spec = self.spec.clone();
        let rows = self.rows;
        self.loader = Some(std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut loaded: Vec<MemberState> = Vec::new();
            loop {
                let path = dir.join(format!("member-{}.snap", loaded.len()));
                if !path.exists() {
                    break;
                }
                match spec.load_member_snapshot(&path, dim, Metric::L2, rows) {
                    Ok((rows_vec, index)) => loaded.push(MemberState { index, rows: rows_vec }),
                    Err(e) => {
                        eprintln!(
                            "[engine] warm start: snapshot {} rejected ({e}); \
                             falling back to a cold build",
                            path.display()
                        );
                        loaded.clear();
                        break;
                    }
                }
            }
            (loaded, t0.elapsed().as_secs_f64())
        }));
    }

    /// Seconds of background snapshot work (loads + saves) done since
    /// the last call, joining any thread still in flight. The AL loop
    /// reads this after each round's selection stage to report how much
    /// snapshot I/O was hidden behind foreground work.
    pub fn take_background_secs(&mut self) -> f64 {
        self.join_background();
        std::mem::take(&mut self.bg_secs)
    }

    fn join_background(&mut self) {
        if let Some(h) = self.loader.take() {
            if let Ok((_, secs)) = h.join() {
                self.bg_secs += secs;
            }
        }
        if let Some(h) = self.saver.take() {
            if let Ok(secs) = h.join() {
                self.bg_secs += secs;
            }
        }
    }

    /// Join the loader (if armed) and install its members as the
    /// previous-round state, provided the committee shape matches and no
    /// retrieval populated the engine first.
    fn take_loaded(&mut self, n: usize, dim: usize) {
        let Some(handle) = self.loader.take() else { return };
        let (loaded, secs) = match handle.join() {
            Ok(out) => out,
            Err(_) => return,
        };
        self.bg_secs += secs;
        if loaded.is_empty() || !self.members.is_empty() {
            return;
        }
        if loaded.len() != n || dim != self.snapshot_dim {
            eprintln!(
                "[engine] warm start: {} member snapshot(s) of width {} do not fit a \
                 committee of {n} at width {dim}; ignoring them",
                loaded.len(),
                self.snapshot_dim
            );
            return;
        }
        self.members = loaded;
    }

    /// Hand the first retrieval's member states to the saver thread.
    /// Only the first round is persisted: it is the expensive build a
    /// warm restart wants to skip, and later rounds mutate members
    /// in place (refresh) or rebuild cheaply from cached state.
    fn maybe_save(&mut self) {
        if self.snapshot_saved || self.members.is_empty() {
            return;
        }
        let Some(dir) = self.snapshot_dir.clone() else { return };
        self.snapshot_saved = true;
        struct MemberBlob {
            rows: Vec<f32>,
            family: u8,
            payload: Vec<u8>,
        }
        let blobs: Vec<MemberBlob> = self
            .members
            .iter()
            .map(|m| {
                let (family, payload) = m.index.snapshot_blob();
                MemberBlob { rows: m.rows.clone(), family, payload }
            })
            .collect();
        self.saver = Some(std::thread::spawn(move || {
            let t0 = Instant::now();
            for (m, MemberBlob { rows, family, payload }) in blobs.into_iter().enumerate() {
                let path = dir.join(format!("member-{m}.snap"));
                if let Err(e) = save_member_blob(&path, &rows, family, &payload) {
                    eprintln!("[engine] snapshot save {} failed: {e}", path.display());
                    break;
                }
            }
            t0.elapsed().as_secs_f64()
        }));
    }

    /// Timings and reuse counters of the most recent retrieval.
    pub fn last_round(&self) -> &EngineRoundStats {
        &self.last
    }

    /// The most recent calibration record, when the tuner is armed and
    /// the spec had a knob to turn.
    pub fn last_tuning(&self) -> Option<&TuningOutcome> {
        self.tuning.as_ref()
    }

    /// Per-shard probe/hedge/failover counters aggregated over all
    /// committee members (element-wise, shard by shard), or `None` when
    /// no member index fans probes across shards — i.e. the spec is not
    /// `Sharded`. Counters accumulate on the member indexes, so they
    /// reset where the indexes do ([`Self::reset`], a rebuild round, or
    /// [`Self::take_member_index`] detaching the member).
    pub fn shard_stats(&self) -> Option<dial_ann::ShardStatsSnapshot> {
        let mut merged: Option<dial_ann::ShardStatsSnapshot> = None;
        for member in &self.members {
            if let Some(snap) = member.index.shard_stats() {
                merged.get_or_insert_with(Default::default).merge(&snap);
            }
        }
        merged
    }

    /// Drop all cached member state; the next retrieval rebuilds every
    /// index from scratch (and recalibrates, when the tuner is armed).
    pub fn reset(&mut self) {
        self.members.clear();
        self.calibrated = false;
        self.tuning = None;
    }

    /// Detach member `m`'s built index from the engine and hand it to the
    /// caller — the hand-off from batch AL rounds to the long-lived
    /// serving layer ([`crate::serve::QueryService`]). The member's
    /// cached rows go with it, so the engine rebuilds that member from
    /// scratch on its next retrieval (as after [`Self::reset`]). Returns
    /// `None` when `m` has no built state yet.
    pub fn take_member_index(&mut self, m: usize) -> Option<Box<dyn AnnIndex>> {
        if m >= self.members.len() {
            return None;
        }
        Some(self.members.remove(m).index)
    }

    /// Clone member `m`'s built index for serving *without* disturbing
    /// the engine: the snapshot blob round-trips through
    /// [`IndexSpec::load_blob`], so the copy probes bitwise-identically
    /// to the member, while the engine keeps its state and can continue
    /// incremental rounds. This is the "serve round *r* while round
    /// *r+1* trains" hand-off: push the clone into a live
    /// [`crate::serve::QueryService`] via
    /// [`crate::serve::QueryService::install_index`] after each round,
    /// and the service's generation bump retires every cached result
    /// from round *r-1*. Returns `None` when `m` has no built state or
    /// the round-trip fails validation (the clone is then unsafe to
    /// serve).
    pub fn clone_member_index(&self, m: usize) -> Option<Box<dyn AnnIndex>> {
        let member = self.members.get(m)?;
        let (family, payload) = member.index.snapshot_blob();
        match self.spec.load_blob(
            family,
            &payload,
            member.index.dim(),
            member.index.metric(),
            self.rows,
        ) {
            Ok(ix) => Some(ix),
            Err(e) => {
                eprintln!("[engine] member {m} snapshot clone failed: {e}");
                None
            }
        }
    }

    /// Index-By-Committee through the persistent engine: member `m`'s
    /// view of `R` is indexed (incrementally when the drift allows) and
    /// probed with its view of `S`; all members' scored pairs pool into
    /// one [`CandidateSet`] capped at `max_size`. Identical output to
    /// [`crate::candidates::index_by_committee`] when every member
    /// rebuilds — the engine only changes *when work happens*, not what
    /// is retrieved.
    pub fn retrieve_committee(
        &mut self,
        views_r: &[Vec<f32>],
        views_s: &[Vec<f32>],
        dim: usize,
        k: usize,
        max_size: usize,
    ) -> CandidateSet {
        assert_eq!(views_r.len(), views_s.len(), "committee view count mismatch");
        let vr: Vec<&[f32]> = views_r.iter().map(Vec::as_slice).collect();
        let vs: Vec<&[f32]> = views_s.iter().map(Vec::as_slice).collect();
        self.retrieve(&vr, &vs, dim, k, max_size)
    }

    /// Single-index retrieval (PairedAdapt and friends) through the same
    /// persistent state — the index over `emb_r` is refreshed, not
    /// rebuilt, when the trunk barely moved since the previous round.
    pub fn retrieve_single(
        &mut self,
        emb_r: &ListEmbeddings,
        emb_s: &ListEmbeddings,
        k: usize,
        max_size: usize,
    ) -> CandidateSet {
        assert_eq!(emb_r.dim, emb_s.dim, "embedding width mismatch");
        self.retrieve(&[&emb_r.data], &[&emb_s.data], emb_r.dim, k, max_size)
    }

    /// The calibration stage (see [`RetrievalEngine::with_tuning`]):
    /// measure recall@k of a held-out probe sample at increasing knob
    /// width and rewrite the spec's width with the cheapest one that
    /// loses nothing. Runs once per quantizer generation; member 0's views
    /// stand in for the workload (every member indexes a view of the
    /// same `R` and probes a view of the same `S`). The choice depends
    /// only on measured recall — never on measured latency — so two
    /// calibrations over the same data pick the same width.
    fn calibrate(
        &mut self,
        view_r: &[f32],
        view_s: &[f32],
        dim: usize,
        k: usize,
    ) -> Option<MemberState> {
        let tune = self.tune?;
        if self.calibrated || self.spec.knob_params().is_none() {
            return None;
        }
        let (n, nq) = (view_r.len() / dim, view_s.len() / dim);
        if n == 0 || nq == 0 {
            // Nothing to measure yet — do *not* consume the calibration
            // opportunity; a later round with real rows still tunes.
            return None;
        }
        self.calibrated = true;
        let t0 = Instant::now();
        let sample_n = tune.sample.clamp(1, nq);
        let sample = &view_s[..sample_n * dim];
        // Exact ground truth for the sample, from a flat scan over R.
        let mut flat = FlatIndex::new(dim, Metric::L2);
        flat.add_batch(view_r);
        let truth = flat.search_batch(sample, k);
        // One probe index builds the index the sweep re-probes at every
        // width; the members themselves build after the spec is tuned.
        let mut probe = self.spec.build_rows(view_r, dim, Metric::L2, self.rows);
        let Some((ceiling, built_width)) = probe.nprobe_knob().or_else(|| probe.ef_search_knob())
        else {
            // The spec is knob-backed but the built index lost the knob
            // (e.g. a shard built over no rows fell back to flat):
            // nothing to tune, but the build is still a valid member-0
            // index — hand it back for reuse.
            return Some(MemberState { index: probe, rows: view_r.to_vec() });
        };
        let knob = self.spec.knob_params().map(|(name, _)| name).expect("gated on knob_params");
        // The comparison floor is the *heuristic's* width, not whatever
        // a previous calibration tuned the spec to.
        let static_width = self.baseline_width.unwrap_or(built_width).min(ceiling).max(1);
        let mut steps: Vec<TuneStep> = Vec::new();
        let measure = |probe: &mut Box<dyn AnnIndex>, width: usize| {
            let _ = probe.set_nprobe(width) || probe.set_ef_search(width);
            let t = Instant::now();
            let hits = probe.search_batch(sample, k);
            let ns = t.elapsed().as_nanos() as f64 / sample_n as f64;
            let recall = recall_at_k(&hits, &truth, k);
            TuneStep { width, recall, probe_ns_per_query: ns }
        };
        // Sweep grid: powers of two up to the ceiling, plus the static
        // default (so the comparison point is always measured) and the
        // ceiling itself.
        let mut grid: Vec<usize> =
            std::iter::successors(Some(1usize), |p| p.checked_mul(2).filter(|&q| q < ceiling))
                .collect();
        grid.push(ceiling);
        grid.push(static_width);
        grid.sort_unstable();
        grid.dedup();
        for &p in &grid {
            let step = measure(&mut probe, p);
            steps.push(step);
            if step.recall >= tune.recall_target {
                break;
            }
            if let [.., prev, last] = steps.as_slice() {
                // Flattening is judged on genuine doublings only — the
                // injected static/ceiling grid points sit closer than 2x
                // and would otherwise read as a flat step and stop the
                // climb early.
                if last.width >= prev.width * 2 && last.recall - prev.recall < tune.epsilon {
                    break;
                }
            }
        }
        if !steps.iter().any(|s| s.width == static_width) {
            // The sweep stopped before reaching the static default;
            // measure it anyway — it is the floor the choice must beat.
            let step = measure(&mut probe, static_width);
            steps.push(step);
            steps.sort_by_key(|s| s.width);
        }
        let static_recall =
            steps.iter().find(|s| s.width == static_width).expect("static step measured").recall;
        let best_recall = steps.iter().map(|s| s.recall).fold(0.0f64, f64::max);
        // Cheapest width that (a) never loses recall to the static
        // default and (b) meets the target where the sweep could.
        let goal = tune.recall_target.min(best_recall).max(static_recall);
        let chosen = *steps
            .iter()
            .find(|s| s.recall >= goal)
            .expect("best_recall meets the goal by construction");
        self.spec.set_knob_width(chosen.width);
        // A recalibration must reach members that survive in place: a
        // refreshed index never re-reads the spec, so without this it
        // would keep probing at the previously tuned width.
        for member in &mut self.members {
            let _ =
                member.index.set_nprobe(chosen.width) || member.index.set_ef_search(chosen.width);
        }
        self.tuning = Some(TuningOutcome {
            knob: knob.to_string(),
            ceiling,
            static_width,
            chosen_width: chosen.width,
            shards: match &self.spec {
                IndexSpec::Sharded { shards, .. } => *shards,
                _ => 1,
            },
            sample: sample_n,
            k,
            static_recall,
            chosen_recall: chosen.recall,
            steps,
            calibrate_secs: t0.elapsed().as_secs_f64(),
        });
        // The probe index is bitwise what member 0 would build from the
        // tuned spec (both knobs are search-time parameters; quantizer/
        // graph construction saw the same rows and seed) — reuse it
        // instead of training the same index twice.
        let _ = probe.set_nprobe(chosen.width) || probe.set_ef_search(chosen.width);
        Some(MemberState { index: probe, rows: view_r.to_vec() })
    }

    fn retrieve(
        &mut self,
        views_r: &[&[f32]],
        views_s: &[&[f32]],
        dim: usize,
        k: usize,
        max_size: usize,
    ) -> CandidateSet {
        let n = views_r.len();
        // Swap in background-loaded snapshot members (if any) before the
        // round starts — between probe batches, never mid-probe.
        self.take_loaded(n, dim);
        // Calibration hands back the index it built over member 0's
        // view; reused below when member 0 has no prior state.
        let mut prebuilt0: Option<MemberState> =
            if n > 0 { self.calibrate(views_r[0], views_s[0], dim, k) } else { None };
        // A committee-size change invalidates the member↔state pairing.
        if self.members.len() != n {
            self.members.clear();
        }
        let t_wall = Instant::now();
        let mut prev: Vec<Option<MemberState>> = self.members.drain(..).map(Some).collect();
        prev.resize_with(n, || None);

        let mut stats = EngineRoundStats::default();
        let mut scored_parts: Vec<Vec<Candidate>> = Vec::with_capacity(n);
        let mut states: Vec<MemberState> = Vec::with_capacity(n);
        let mut drift_samples = 0usize;

        let mut quantizer_invalidated = false;
        let mut absorb = |stats: &mut EngineRoundStats, info: &BuildInfo, had_prev: bool| {
            stats.build_secs += info.secs;
            if info.incremental {
                stats.incremental_members += 1;
            } else {
                stats.rebuilt_members += 1;
            }
            if had_prev {
                stats.mean_drift += info.drift;
                drift_samples += 1;
                if !info.incremental {
                    // A member with prior state rebuilt from scratch:
                    // its quantizer retrained on drifted rows, so the
                    // calibrated nprobe no longer describes the index it
                    // was measured on. Recalibrate next round.
                    quantizer_invalidated = true;
                }
            }
            // Same staleness through the other door: a refresh whose
            // growth-triggered retrain replaced the quantizer in place.
            quantizer_invalidated |= info.retrained;
        };

        if self.pipeline_depth == 0 || n <= 1 {
            // Sequential reference path: build (or refresh) member m,
            // then probe it, then move on.
            for m in 0..n {
                let had_prev = prev[m].is_some();
                let (state, info) = prepare_member(
                    &self.spec,
                    self.incremental_threshold,
                    self.rows,
                    prev[m].take(),
                    if m == 0 { prebuilt0.take() } else { None },
                    views_r[m],
                    dim,
                );
                absorb(&mut stats, &info, had_prev);
                let t0 = Instant::now();
                let mut scored = Vec::new();
                probe_blocked(&mut scored, state.index.as_ref(), views_s[m], dim, k);
                stats.probe_secs += t0.elapsed().as_secs_f64();
                scored_parts.push(scored);
                states.push(state);
            }
        } else {
            // Two-stage pipeline: a builder thread streams prepared
            // member states through a bounded channel while this thread
            // probes them. FIFO order means states arrive tagged in
            // member order, so slot m is member m by construction.
            let spec = &self.spec;
            let threshold = self.incremental_threshold;
            let rows = self.rows;
            let had_prev: Vec<bool> = prev.iter().map(Option::is_some).collect();
            std::thread::scope(|s| {
                let (tx, rx) = pipeline::bounded(self.pipeline_depth);
                s.spawn(move || {
                    for (m, view) in views_r.iter().enumerate() {
                        let pre = if m == 0 { prebuilt0.take() } else { None };
                        let out =
                            prepare_member(spec, threshold, rows, prev[m].take(), pre, view, dim);
                        if tx.send(out).is_err() {
                            break;
                        }
                    }
                });
                for (state, info) in rx {
                    let m = states.len();
                    absorb(&mut stats, &info, had_prev[m]);
                    let t0 = Instant::now();
                    let mut scored = Vec::new();
                    probe_blocked(&mut scored, state.index.as_ref(), views_s[m], dim, k);
                    stats.probe_secs += t0.elapsed().as_secs_f64();
                    scored_parts.push(scored);
                    states.push(state);
                }
            });
        }

        self.members = states;
        self.maybe_save();
        if quantizer_invalidated {
            self.calibrated = false;
        }
        if drift_samples > 0 {
            stats.mean_drift /= drift_samples as f64;
        }
        stats.wall_secs = t_wall.elapsed().as_secs_f64();
        self.last = stats;

        let mut scored = Vec::with_capacity(scored_parts.iter().map(Vec::len).sum());
        for part in scored_parts {
            scored.extend(part);
        }
        CandidateSet::from_scored(scored, max_size)
    }
}

impl Drop for RetrievalEngine {
    fn drop(&mut self) {
        // Never leak a background snapshot thread past the engine.
        self.join_background();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{index_by_committee, index_single};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const DIM: usize = 8;

    fn views(n_rows: usize, members: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..members)
            .map(|_| (0..n_rows * DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect()
    }

    fn emb(data: Vec<f32>) -> ListEmbeddings {
        ListEmbeddings { dim: DIM, data }
    }

    #[test]
    fn first_round_matches_index_by_committee() {
        let vr = views(40, 3, 1);
        let vs = views(25, 3, 2);
        for depth in [0usize, 2] {
            let mut engine = RetrievalEngine::new(IndexSpec::Flat, 0.0, depth);
            let got = engine.retrieve_committee(&vr, &vs, DIM, 3, 500);
            let want = index_by_committee(&vr, &vs, DIM, 3, 500, &IndexSpec::Flat);
            assert_eq!(got.pairs(), want.pairs(), "depth={depth}");
            assert_eq!(engine.last_round().rebuilt_members, 3);
            assert_eq!(engine.last_round().incremental_members, 0);
        }
    }

    #[test]
    fn unchanged_views_take_the_incremental_path_and_stay_exact() {
        let vr = views(40, 2, 3);
        let vs = views(25, 2, 4);
        let mut engine = RetrievalEngine::new(IndexSpec::Flat, 0.0, 2);
        let first = engine.retrieve_committee(&vr, &vs, DIM, 3, 500);
        let second = engine.retrieve_committee(&vr, &vs, DIM, 3, 500);
        assert_eq!(first.pairs(), second.pairs());
        let st = engine.last_round();
        assert_eq!(st.incremental_members, 2, "drift 0 must refresh, not rebuild");
        assert_eq!(st.rebuilt_members, 0);
        assert_eq!(st.mean_drift, 0.0);
    }

    #[test]
    fn drift_above_threshold_rebuilds() {
        let vr = views(30, 2, 5);
        let vs = views(20, 2, 6);
        let mut engine = RetrievalEngine::new(IndexSpec::Flat, 1e-6, 2);
        engine.retrieve_committee(&vr, &vs, DIM, 3, 500);
        let moved = views(30, 2, 99); // completely different embeddings
        let got = engine.retrieve_committee(&moved, &vs, DIM, 3, 500);
        let st = engine.last_round();
        assert_eq!(st.rebuilt_members, 2);
        assert!(st.mean_drift > 1e-6, "drift {} not measured", st.mean_drift);
        // And the rebuilt state retrieves exactly like a fresh engine.
        let want = index_by_committee(&moved, &vs, DIM, 3, 500, &IndexSpec::Flat);
        assert_eq!(got.pairs(), want.pairs());
    }

    #[test]
    fn incremental_refresh_with_changed_rows_matches_rebuild_exactly() {
        // Perturb a few rows and append some: under a permissive
        // threshold the Flat engine refreshes in place, and the result
        // must still be bit-identical to a from-scratch committee build.
        let vr = views(40, 2, 7);
        let vs = views(25, 2, 8);
        for spec in [IndexSpec::Flat, IndexSpec::Flat.sharded(3)] {
            let mut engine = RetrievalEngine::new(spec.clone(), f64::MAX, 2);
            engine.retrieve_committee(&vr, &vs, DIM, 3, 500);
            let mut moved = vr.clone();
            moved[0][3] += 0.25;
            moved[1][5 * DIM] -= 0.5;
            for v in &mut moved {
                v.extend(views(4, 1, 11)[0].iter());
            }
            let got = engine.retrieve_committee(&moved, &vs, DIM, 3, 500);
            assert_eq!(engine.last_round().incremental_members, 2, "{}", spec.name());
            let want = index_by_committee(&moved, &vs, DIM, 3, 500, &spec);
            assert_eq!(got.pairs(), want.pairs(), "{}", spec.name());
        }
    }

    #[test]
    fn scaled_rows_at_zero_threshold_rebuild_not_refresh() {
        // A purely scaled row has cosine shift exactly 0 but IS bitwise
        // changed; the strictly-zero default threshold must refuse the
        // overwrite (an IVF refresh of that row would be silently
        // inexact) and rebuild instead.
        let vr = views(30, 1, 40);
        let vs = views(20, 1, 41);
        let mut engine = RetrievalEngine::new(IndexSpec::Flat, 0.0, 2);
        engine.retrieve_committee(&vr, &vs, DIM, 3, 500);
        let mut scaled = vr.clone();
        for x in &mut scaled[0][..DIM] {
            *x *= 2.0;
        }
        let got = engine.retrieve_committee(&scaled, &vs, DIM, 3, 500);
        let st = engine.last_round();
        assert_eq!(st.rebuilt_members, 1, "scaled row must force a rebuild at threshold 0");
        assert_eq!(st.incremental_members, 0);
        assert!(st.mean_drift < 1e-12, "pure scaling is (near-)invisible to the cosine drift");
        let want = index_by_committee(&scaled, &vs, DIM, 3, 500, &IndexSpec::Flat);
        assert_eq!(got.pairs(), want.pairs());
    }

    #[test]
    fn declining_family_falls_back_to_rebuild() {
        // PQ and HNSW accept append-only refreshes but decline row
        // overwrites; with an overwritten row under a permissive
        // threshold the engine must rebuild (and still answer exactly
        // like a fresh committee build). Unchanged views, by contrast,
        // now ride the no-op refresh even for these families.
        let spec = IndexSpec::Hnsw(dial_ann::HnswParams::default());
        let vr = views(40, 1, 12);
        let vs = views(20, 1, 13);
        let mut engine = RetrievalEngine::new(spec.clone(), f64::MAX, 2);
        engine.retrieve_committee(&vr, &vs, DIM, 3, 500);
        let got = engine.retrieve_committee(&vr, &vs, DIM, 3, 500);
        assert_eq!(engine.last_round().incremental_members, 1, "no-op refresh is accepted");
        let want = index_by_committee(&vr, &vs, DIM, 3, 500, &spec);
        assert_eq!(got.pairs(), want.pairs());
        let mut moved = vr.clone();
        moved[0][3] += 0.25; // overwrite one stored row
        let got = engine.retrieve_committee(&moved, &vs, DIM, 3, 500);
        assert_eq!(engine.last_round().rebuilt_members, 1, "overwrites still decline");
        let want = index_by_committee(&moved, &vs, DIM, 3, 500, &spec);
        assert_eq!(got.pairs(), want.pairs());
    }

    #[test]
    fn pipelined_and_sequential_retrieval_are_identical() {
        let vr = views(60, 4, 14);
        let vs = views(35, 4, 15);
        let run = |depth: usize| {
            let mut engine = RetrievalEngine::new(IndexSpec::Flat, 0.0, depth);
            let a = engine.retrieve_committee(&vr, &vs, DIM, 4, 800);
            let b = engine.retrieve_committee(&vr, &vs, DIM, 4, 800);
            (a, b)
        };
        let (seq_a, seq_b) = run(0);
        for depth in [1usize, 2, 8] {
            let (pip_a, pip_b) = run(depth);
            assert_eq!(seq_a.pairs(), pip_a.pairs(), "depth={depth} round 0");
            assert_eq!(seq_b.pairs(), pip_b.pairs(), "depth={depth} round 1");
        }
    }

    #[test]
    fn single_retrieval_is_persistent_and_matches_index_single() {
        let er = emb(views(50, 1, 16).remove(0));
        let es = emb(views(30, 1, 17).remove(0));
        let mut engine = RetrievalEngine::new(IndexSpec::Flat, 0.0, 2);
        let got = engine.retrieve_single(&er, &es, 3, 400);
        let want = index_single(&er, &es, 3, 400, &IndexSpec::Flat);
        assert_eq!(got.pairs(), want.pairs());
        // Second round, same trunk: incremental.
        let again = engine.retrieve_single(&er, &es, 3, 400);
        assert_eq!(again.pairs(), want.pairs());
        assert_eq!(engine.last_round().incremental_members, 1);
    }

    #[test]
    fn committee_size_change_resets_state() {
        let mut engine = RetrievalEngine::new(IndexSpec::Flat, f64::MAX, 2);
        engine.retrieve_committee(&views(20, 3, 18), &views(10, 3, 19), DIM, 2, 100);
        engine.retrieve_committee(&views(20, 2, 18), &views(10, 2, 19), DIM, 2, 100);
        assert_eq!(engine.last_round().rebuilt_members, 2);
        assert_eq!(engine.last_round().incremental_members, 0);
    }

    /// `members` views of a clustered corpus plus matching probe views:
    /// `n_rows` points in `clusters` tight blobs (the shape committee
    /// embeddings actually take), probes perturbed from corpus rows.
    fn clustered_views(
        n_rows: usize,
        nq: usize,
        members: usize,
        clusters: usize,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<f32> = (0..clusters * DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let point = |i: usize, rng: &mut StdRng| -> Vec<f32> {
            let c = i % clusters;
            centers[c * DIM..(c + 1) * DIM]
                .iter()
                .map(|&x| x + rng.gen_range(-0.01f32..0.01))
                .collect()
        };
        let mut vr = Vec::new();
        let mut vs = Vec::new();
        for _ in 0..members {
            vr.push((0..n_rows).flat_map(|i| point(i, &mut rng)).collect());
            vs.push((0..nq).flat_map(|i| point(i, &mut rng)).collect());
        }
        (vr, vs)
    }

    fn ivf_spec(nlist: usize, nprobe: usize) -> IndexSpec {
        IndexSpec::IvfFlat(dial_ann::IvfParams { nlist, nprobe, ..Default::default() })
    }

    #[test]
    fn tuner_is_deterministic_and_never_worse_than_static() {
        let (vr, vs) = clustered_views(600, 120, 2, 12, 50);
        let run = || {
            let mut e =
                RetrievalEngine::with_tuning(ivf_spec(24, 3), 0.0, 2, TuneConfig::default());
            let cand = e.retrieve_committee(&vr, &vs, DIM, 5, 2_000);
            (cand, e.last_tuning().cloned().expect("an IVF spec must calibrate"))
        };
        let (cand_a, a) = run();
        let (cand_b, b) = run();
        // Calibration determinism: same data, same chosen width, same
        // measured recall at every step (latency is recorded but never
        // consulted), same retrieved candidates.
        assert_eq!(a.chosen_width, b.chosen_width);
        assert_eq!(a.shards, b.shards);
        assert_eq!(a.knob, "nprobe");
        let key = |t: &TuningOutcome| {
            t.steps.iter().map(|s| (s.width, s.recall.to_bits())).collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
        assert_eq!(cand_a.pairs(), cand_b.pairs());
        // The tuner never loses recall to the static default, and never
        // scans more than the ceiling.
        assert!(a.chosen_recall >= a.static_recall, "{a:?}");
        assert!(a.chosen_width <= a.ceiling);
        assert!(a.steps.iter().any(|s| s.width == a.static_width), "floor must be measured");
        assert!(a.calibrate_secs > 0.0);
    }

    #[test]
    fn tuner_calibrates_sharded_ivf_through_the_knob() {
        let (vr, vs) = clustered_views(600, 100, 1, 10, 51);
        let spec = ivf_spec(12, 2).sharded(2);
        let mut e = RetrievalEngine::with_tuning(spec, 0.0, 0, TuneConfig::default());
        e.retrieve_committee(&vr, &vs, DIM, 4, 1_000);
        let t = e.last_tuning().expect("sharded IVF carries the knob");
        assert_eq!(t.shards, 2);
        assert!(t.chosen_recall >= t.static_recall);
        assert!(t.ceiling <= 12, "ceiling is the smallest per-shard nlist");
    }

    #[test]
    fn tuning_is_a_noop_for_knobless_specs() {
        // A flat spec (what auto resolves to below the size ceiling) has
        // no nprobe knob: the armed tuner must retrieve bit-for-bit what
        // the untuned engine does — `--auto-tune` off or on, today's
        // static-auto candidate sets are reproduced exactly.
        let vr = views(50, 2, 52);
        let vs = views(30, 2, 53);
        let mut tuned =
            RetrievalEngine::with_tuning(IndexSpec::Flat, 0.0, 2, TuneConfig::default());
        let mut plain = RetrievalEngine::new(IndexSpec::Flat, 0.0, 2);
        let a = tuned.retrieve_committee(&vr, &vs, DIM, 3, 500);
        let b = plain.retrieve_committee(&vr, &vs, DIM, 3, 500);
        assert_eq!(a.pairs(), b.pairs());
        assert!(tuned.last_tuning().is_none());
    }

    #[test]
    fn quantizer_invalidating_rebuild_triggers_recalibration() {
        let (vr, vs) = clustered_views(400, 80, 1, 8, 54);
        let (vr2, vs2) = clustered_views(400, 80, 1, 8, 99); // different blobs
        let mut e = RetrievalEngine::with_tuning(ivf_spec(16, 2), 1e-6, 0, TuneConfig::default());
        e.retrieve_committee(&vr, &vs, DIM, 4, 1_000);
        let first = e.last_tuning().cloned().unwrap();
        // Fully drifted rows: the member rebuilds (quantizer retrains),
        // which must invalidate the calibration...
        e.retrieve_committee(&vr2, &vs2, DIM, 4, 1_000);
        assert_eq!(e.last_round().rebuilt_members, 1);
        // ...so the next round recalibrates against the new embeddings:
        // its sweep matches a fresh engine calibrated on them directly,
        // and the refreshed member probes at the recalibrated width (the
        // candidates match a fresh engine's bit-for-bit).
        let got = e.retrieve_committee(&vr2, &vs2, DIM, 4, 1_000);
        let recal = e.last_tuning().cloned().unwrap();
        let mut fresh =
            RetrievalEngine::with_tuning(ivf_spec(16, 2), 1e-6, 0, TuneConfig::default());
        let want_cand = fresh.retrieve_committee(&vr2, &vs2, DIM, 4, 1_000);
        let want = fresh.last_tuning().cloned().unwrap();
        let key = |t: &TuningOutcome| {
            (
                t.chosen_width,
                t.steps.iter().map(|s| (s.width, s.recall.to_bits())).collect::<Vec<_>>(),
            )
        };
        assert_eq!(key(&recal), key(&want));
        assert_eq!(got.pairs(), want_cand.pairs());
        // Sanity: the record really was replaced (first round's steps
        // were measured on the old blobs).
        let _ = first;
    }

    #[test]
    fn growth_retrain_during_refresh_invalidates_calibration() {
        // An IVF index built over a tiny seed pool clamps nlist to it; a
        // refresh that appends past RETRAIN_GROWTH retrains the
        // quantizer in place (the probe-width ceiling changes), and the
        // engine must recalibrate against the new quantizer.
        let (vr, vs) = clustered_views(30, 40, 1, 6, 60);
        let mut e =
            RetrievalEngine::with_tuning(ivf_spec(64, 4), f64::MAX, 0, TuneConfig::default());
        e.retrieve_committee(&vr, &vs, DIM, 3, 1_000);
        let first = e.last_tuning().cloned().unwrap();
        assert_eq!(first.ceiling, 30, "build clamps nlist (and the ceiling) to the seed pool");
        // Grow the member's view 5x: the in-place refresh retrains.
        let mut grown = vr.clone();
        grown[0].extend(views(120, 1, 61).remove(0));
        e.retrieve_committee(&grown, &vs, DIM, 3, 1_000);
        assert_eq!(e.last_round().incremental_members, 1, "growth must ride the refresh path");
        // Next round: recalibrated, with the un-clamped ceiling.
        e.retrieve_committee(&grown, &vs, DIM, 3, 1_000);
        assert_eq!(
            e.last_tuning().unwrap().ceiling,
            64,
            "recalibration must see the retrained nlist"
        );
    }

    fn hnsw_spec(ef: usize) -> IndexSpec {
        IndexSpec::Hnsw(dial_ann::HnswParams { ef_search: ef, ..Default::default() })
    }

    #[test]
    fn tuner_calibrates_hnsw_ef_search() {
        let (vr, vs) = clustered_views(600, 100, 1, 12, 55);
        let mut e = RetrievalEngine::with_tuning(hnsw_spec(4), 0.0, 0, TuneConfig::default());
        e.retrieve_committee(&vr, &vs, DIM, 5, 2_000);
        let t = e.last_tuning().cloned().expect("an HNSW spec must calibrate");
        assert_eq!(t.knob, "ef_search");
        assert_eq!(t.ceiling, 600, "beam ceiling is the node count");
        assert!(t.chosen_recall >= t.static_recall, "{t:?}");
        assert!(t.steps.iter().any(|s| s.width == t.static_width), "floor must be measured");
        // The tuned width is written back to the spec, so the rebuilds
        // HNSW pays every round (it declines in-place refresh) keep it.
        assert_eq!(e.spec.knob_params(), Some(("ef_search", t.chosen_width)));
    }

    #[test]
    fn tuner_calibrates_sharded_hnsw_through_the_knob() {
        let (vr, vs) = clustered_views(600, 80, 1, 10, 56);
        let spec = hnsw_spec(4).sharded(2);
        let mut e = RetrievalEngine::with_tuning(spec, 0.0, 0, TuneConfig::default());
        e.retrieve_committee(&vr, &vs, DIM, 4, 1_000);
        let t = e.last_tuning().expect("sharded HNSW carries the knob");
        assert_eq!(t.knob, "ef_search");
        assert_eq!(t.shards, 2);
        assert_eq!(t.ceiling, 300, "ceiling is the smallest shard's node count");
        assert!(t.chosen_recall >= t.static_recall, "{t:?}");
    }

    #[test]
    fn compressed_rows_ride_the_engine_end_to_end() {
        // An f16-rows engine must rank against the *decoded* rows: its
        // retrieval is bitwise an f32 engine fed the f16-roundtripped
        // embeddings, and the incremental path still engages (the stored
        // f32 drift baseline is unchanged by the storage format).
        use dial_ann::rowstore::{f16_to_f32, f32_to_f16};
        let vr = views(50, 2, 70);
        let vs = views(30, 2, 71);
        let decoded: Vec<Vec<f32>> =
            vr.iter().map(|v| v.iter().map(|&x| f16_to_f32(f32_to_f16(x))).collect()).collect();
        let mut half = RetrievalEngine::new(IndexSpec::Flat, 0.0, 2);
        half.set_rows(RowFormat::F16);
        let mut full = RetrievalEngine::new(IndexSpec::Flat, 0.0, 2);
        let got = half.retrieve_committee(&vr, &vs, DIM, 3, 500);
        let want = full.retrieve_committee(&decoded, &vs, DIM, 3, 500);
        assert_eq!(got.pairs(), want.pairs());
        // Unchanged views: the refresh path, not a rebuild.
        let again = half.retrieve_committee(&vr, &vs, DIM, 3, 500);
        assert_eq!(again.pairs(), want.pairs());
        assert_eq!(half.last_round().incremental_members, 2);
        // Switching formats drops cached state (stored rows would
        // otherwise keep the old encoding).
        half.set_rows(RowFormat::Bf16);
        half.retrieve_committee(&vr, &vs, DIM, 3, 500);
        assert_eq!(half.last_round().rebuilt_members, 2);
    }

    fn snap_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dial_engine_snap_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_start_retrieves_bitwise_like_cold_and_skips_the_rebuild() {
        let vr = views(60, 2, 80);
        let vs = views(30, 2, 81);
        for spec in [IndexSpec::Flat, ivf_spec(8, 3), IndexSpec::Flat.sharded(3), hnsw_spec(16)] {
            let dir = snap_dir(&format!("warm_{}", spec.name()));
            // Cold engine: builds from scratch, saves member snapshots.
            let mut cold = RetrievalEngine::new(spec.clone(), 0.0, 2);
            cold.set_snapshot(Some(dir.clone()), false, DIM);
            let want = cold.retrieve_committee(&vr, &vs, DIM, 3, 500);
            assert!(cold.take_background_secs() > 0.0, "saver must run ({})", spec.name());
            assert!(dir.join("member-1.snap").exists(), "{}", spec.name());
            // Warm engine: loads them, takes the no-op refresh path, and
            // retrieves bit-for-bit the cold candidates.
            let mut warm = RetrievalEngine::new(spec.clone(), 0.0, 2);
            warm.set_snapshot(Some(dir.clone()), true, DIM);
            let got = warm.retrieve_committee(&vr, &vs, DIM, 3, 500);
            assert_eq!(got.pairs(), want.pairs(), "{}", spec.name());
            let st = warm.last_round();
            assert_eq!(st.incremental_members, 2, "warm start must not rebuild ({})", spec.name());
            assert_eq!(st.rebuilt_members, 0, "{}", spec.name());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn warm_start_with_drifted_rows_rebuilds_and_stays_exact() {
        // Snapshots from one run, embeddings from another: the bitwise
        // row comparison must notice and rebuild — same trajectory as a
        // cold run on the new rows.
        let dir = snap_dir("drifted");
        let vs = views(25, 2, 83);
        let mut first = RetrievalEngine::new(IndexSpec::Flat, 0.0, 2);
        first.set_snapshot(Some(dir.clone()), false, DIM);
        first.retrieve_committee(&views(40, 2, 82), &vs, DIM, 3, 500);
        first.take_background_secs();
        let moved = views(40, 2, 99);
        let mut warm = RetrievalEngine::new(IndexSpec::Flat, 0.0, 2);
        warm.set_snapshot(Some(dir.clone()), true, DIM);
        let got = warm.retrieve_committee(&moved, &vs, DIM, 3, 500);
        assert_eq!(warm.last_round().rebuilt_members, 2);
        let want = index_by_committee(&moved, &vs, DIM, 3, 500, &IndexSpec::Flat);
        assert_eq!(got.pairs(), want.pairs());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_mismatched_snapshots_fall_back_to_a_cold_build() {
        let dir = snap_dir("corrupt");
        let vr = views(40, 2, 84);
        let vs = views(25, 2, 85);
        let mut first = RetrievalEngine::new(IndexSpec::Flat, 0.0, 2);
        first.set_snapshot(Some(dir.clone()), false, DIM);
        let want = first.retrieve_committee(&vr, &vs, DIM, 3, 500);
        first.take_background_secs();
        let run_warm = |spec: IndexSpec, dim: usize| {
            let mut warm = RetrievalEngine::new(spec, 0.0, 2);
            warm.set_snapshot(Some(dir.clone()), true, dim);
            let got = warm.retrieve_committee(&vr, &vs, DIM, 3, 500);
            (got, warm.last_round().rebuilt_members)
        };
        // Flip a byte mid-file: checksum rejects it, cold build follows.
        let path = dir.join("member-0.snap");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (got, rebuilt) = run_warm(IndexSpec::Flat, DIM);
        assert_eq!(rebuilt, 2, "corrupt snapshot must fall back to rebuild");
        assert_eq!(got.pairs(), want.pairs());
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        // Truncation is caught the same way.
        let keep = bytes.len() / 3;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let (got, rebuilt) = run_warm(IndexSpec::Flat, DIM);
        assert_eq!(rebuilt, 2, "truncated snapshot must fall back to rebuild");
        assert_eq!(got.pairs(), want.pairs());
        std::fs::write(&path, &bytes).unwrap();
        // A spec mismatch (snapshots were Flat, engine wants IVF) and a
        // width mismatch both discard the snapshots up front.
        let (got, rebuilt) = run_warm(ivf_spec(8, 2), DIM);
        assert_eq!(rebuilt, 2, "family mismatch must fall back to rebuild");
        let want_ivf = index_by_committee(&vr, &vs, DIM, 3, 500, &ivf_spec(8, 2));
        assert_eq!(got.pairs(), want_ivf.pairs());
        let (got, rebuilt) = run_warm(IndexSpec::Flat, DIM + 1);
        assert_eq!(rebuilt, 2, "dim mismatch must fall back to rebuild");
        assert_eq!(got.pairs(), want.pairs());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mean_cosine_shift_properties() {
        let a = [1.0f32, 0.0, 0.0, 1.0]; // two 2-d rows
        assert_eq!(mean_cosine_shift(&a, &a, 2), 0.0);
        // Pure scaling keeps the angle: shift stays 0.
        let scaled = [2.0f32, 0.0, 0.0, 3.0];
        assert!(mean_cosine_shift(&a, &scaled, 2) < 1e-12);
        // A 90° rotation of one of two rows: mean shift 0.5.
        let rot = [0.0f32, 1.0, 0.0, 1.0];
        assert!((mean_cosine_shift(&a, &rot, 2) - 0.5).abs() < 1e-12);
        // Zero→nonzero counts as a full shift.
        let z = [0.0f32, 0.0, 0.0, 1.0];
        assert!((mean_cosine_shift(&z, &a, 2) - 0.5).abs() < 1e-12);
        assert_eq!(mean_cosine_shift(&[], &[], 2), 0.0);
    }
}
