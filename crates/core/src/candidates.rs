//! Candidate-set construction: Index-By-Committee retrieval (§3.2.1,
//! Algorithm 1 lines 9–25) and its single-index variants.
//!
//! Retrieval is backend-agnostic: indexes are built through
//! [`IndexSpec::build`] and probed through the [`dial_ann::AnnIndex`]
//! trait, so the Flat / IVF-Flat / PQ / HNSW choice — and whether each
//! member's index is split into round-robin shards
//! ([`IndexSpec::Sharded`], from `DialConfig::index_shards`) — plumbs
//! down from [`crate::config::IndexBackend`] without this module knowing
//! which family it runs on. Probes run **batch-blocked**: each member's
//! probe list is fed to `search_batch` in [`PROBE_BLOCK`]-query blocks
//! and scored block by block, bounding peak hit memory; inside each
//! backend the block is scored by the blocked distance kernels
//! (query-block × row-block tiles) on the work-stealing executor.
//! Sharded backends additionally fan each block across shards and
//! k-way-merge the per-shard top-k.

use crate::encode::ListEmbeddings;
use dial_ann::{AnnIndex, IndexSpec, Metric};
use std::collections::HashMap;

/// Probe queries per `search_batch` call. Blocking the committee probe
/// bounds the peak hit-list allocation to `PROBE_BLOCK · k` hits per
/// member (instead of `|S| · k` all at once) and keeps each block's
/// queries cache-hot through the index's own query-block × row-block
/// kernel tiles; the work-stealing executor balances the blocks' probe
/// cost across cores even when some probes land on expensive regions.
pub(crate) const PROBE_BLOCK: usize = 512;

/// A scored candidate pair `(r, s)` with its smallest observed embedding
/// distance across committee members and its best per-probe rank (0 = it
/// was some probe's nearest neighbour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    pub r: u32,
    pub s: u32,
    pub distance: f32,
    pub rank: u32,
}

/// The blocked candidate set `cand ⊂ R × S`, ordered by ascending distance.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    pairs: Vec<Candidate>,
}

impl CandidateSet {
    /// Build from scored pairs: deduplicate keeping the best (rank,
    /// distance), order by ascending per-probe rank then distance, truncate
    /// to `max_size`.
    ///
    /// Rank-major ordering matters: absolute distances are not comparable
    /// across probes or committee members (each member warps the space
    /// differently), so a global distance cutoff would starve whole regions
    /// of `S`. Keeping every probe's nearest pairs first preserves coverage
    /// — the reading of Algorithm 1 line 25 consistent with FAISS per-query
    /// retrieval.
    pub fn from_scored(scored: Vec<Candidate>, max_size: usize) -> Self {
        let mut best: HashMap<(u32, u32), (u32, f32)> = HashMap::with_capacity(scored.len());
        for c in scored {
            best.entry((c.r, c.s))
                .and_modify(|(rk, d)| {
                    if (c.rank, c.distance) < (*rk, *d) {
                        *rk = c.rank;
                        *d = c.distance;
                    }
                })
                .or_insert((c.rank, c.distance));
        }
        let mut pairs: Vec<Candidate> = best
            .into_iter()
            .map(|((r, s), (rank, distance))| Candidate { r, s, distance, rank })
            .collect();
        pairs.sort_by(|a, b| {
            a.rank
                .cmp(&b.rank)
                .then(a.distance.partial_cmp(&b.distance).unwrap())
                .then(a.r.cmp(&b.r))
                .then(a.s.cmp(&b.s))
        });
        pairs.truncate(max_size);
        CandidateSet { pairs }
    }

    /// Build from unscored pairs (rule blocking): distance and rank 0.
    pub fn from_pairs(pairs: &[(u32, u32)]) -> Self {
        CandidateSet {
            pairs: pairs.iter().map(|&(r, s)| Candidate { r, s, distance: 0.0, rank: 0 }).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    pub fn pairs(&self) -> &[Candidate] {
        &self.pairs
    }

    /// Pair keys as a hash set.
    pub fn key_set(&self) -> std::collections::HashSet<(u32, u32)> {
        self.pairs.iter().map(|c| (c.r, c.s)).collect()
    }
}

/// Score every probe's hit list into `(r, s, distance, rank)` candidates.
/// `s_base` is the global id of the first query in this probe block.
pub(crate) fn score_probe_hits(
    scored: &mut Vec<Candidate>,
    hits: Vec<Vec<dial_ann::Hit>>,
    s_base: u32,
) {
    for (s_off, hs) in hits.into_iter().enumerate() {
        for (rank, h) in hs.into_iter().enumerate() {
            scored.push(Candidate {
                r: h.id,
                s: s_base + s_off as u32,
                distance: h.distance,
                rank: rank as u32,
            });
        }
    }
}

/// Probe `index` with every packed query, in blocks of [`PROBE_BLOCK`],
/// scoring each block's hits as soon as the block returns. Identical
/// output to one monolithic `search_batch` call (each query's hits are a
/// pure function of that query), with bounded peak memory.
pub(crate) fn probe_blocked(
    scored: &mut Vec<Candidate>,
    index: &dyn AnnIndex,
    queries: &[f32],
    dim: usize,
    k: usize,
) {
    let mut s_base = 0u32;
    for block in queries.chunks(PROBE_BLOCK * dim) {
        score_probe_hits(scored, index.search_batch(block, k), s_base);
        s_base += (block.len() / dim) as u32;
    }
}

/// Index-By-Committee: for each member, index its view of `R` with the
/// configured backend and probe with its view of `S`, retrieving `k`
/// neighbours per probe; pool all members' pairs and keep the globally
/// closest `max_size`.
///
/// `views_r[k]` / `views_s[k]` are member `k`'s packed embeddings (from
/// [`crate::blocker::Committee::embed_list`]). `spec` selects the ANN
/// family — [`IndexSpec::Flat`] reproduces the exact pre-refactor
/// candidate sets bit-for-bit.
pub fn index_by_committee(
    views_r: &[Vec<f32>],
    views_s: &[Vec<f32>],
    dim: usize,
    k: usize,
    max_size: usize,
    spec: &IndexSpec,
) -> CandidateSet {
    assert_eq!(views_r.len(), views_s.len(), "committee view count mismatch");
    let mut scored = Vec::new();
    for (vr, vs) in views_r.iter().zip(views_s) {
        let index = spec.build(vr, dim, Metric::L2);
        probe_blocked(&mut scored, index.as_ref(), vs, dim, k);
    }
    CandidateSet::from_scored(scored, max_size)
}

/// Single-index retrieval over raw trunk embeddings (PairedFixed /
/// PairedAdapt / SentenceBERT blocking), through the same backend-agnostic
/// build/probe path as [`index_by_committee`].
pub fn index_single(
    emb_r: &ListEmbeddings,
    emb_s: &ListEmbeddings,
    k: usize,
    max_size: usize,
    spec: &IndexSpec,
) -> CandidateSet {
    assert_eq!(emb_r.dim, emb_s.dim, "embedding width mismatch");
    let index = spec.build(&emb_r.data, emb_r.dim, Metric::L2);
    let mut scored = Vec::new();
    probe_blocked(&mut scored, index.as_ref(), &emb_s.data, emb_r.dim, k);
    CandidateSet::from_scored(scored, max_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb(rows: &[&[f32]]) -> ListEmbeddings {
        let dim = rows[0].len();
        let mut data = Vec::new();
        for r in rows {
            data.extend_from_slice(r);
        }
        ListEmbeddings { dim, data }
    }

    #[test]
    fn from_scored_dedups_keeping_min() {
        let set = CandidateSet::from_scored(
            vec![
                Candidate { r: 0, s: 0, distance: 2.0, rank: 0 },
                Candidate { r: 0, s: 0, distance: 1.0, rank: 0 },
                Candidate { r: 1, s: 0, distance: 0.5, rank: 0 },
            ],
            10,
        );
        assert_eq!(set.len(), 2);
        assert_eq!(set.pairs()[0].r, 1);
        assert_eq!(set.pairs()[1].distance, 1.0);
    }

    #[test]
    fn from_scored_truncates_to_closest() {
        let scored: Vec<Candidate> =
            (0..10).map(|i| Candidate { r: i, s: 0, distance: i as f32, rank: 0 }).collect();
        let set = CandidateSet::from_scored(scored, 3);
        assert_eq!(set.len(), 3);
        assert!(set.pairs().iter().all(|c| c.distance < 3.0));
    }

    #[test]
    fn rank_dominates_distance_in_truncation() {
        // A rank-0 pair with a large distance must outlive a rank-2 pair
        // with a small distance (per-probe fairness).
        let set = CandidateSet::from_scored(
            vec![
                Candidate { r: 0, s: 0, distance: 100.0, rank: 0 },
                Candidate { r: 1, s: 1, distance: 0.1, rank: 2 },
            ],
            1,
        );
        assert_eq!(set.pairs()[0].r, 0);
    }

    #[test]
    fn single_index_finds_aligned_pairs() {
        let er = emb(&[&[0.0, 0.0], &[5.0, 5.0], &[10.0, 10.0]]);
        let es = emb(&[&[0.1, 0.0], &[5.1, 5.0], &[10.1, 10.0]]);
        let set = index_single(&er, &es, 1, 100, &IndexSpec::Flat);
        let keys = set.key_set();
        assert!(keys.contains(&(0, 0)) && keys.contains(&(1, 1)) && keys.contains(&(2, 2)));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn committee_union_covers_more_than_single_member() {
        // Member views disagree; the union should contain both members'
        // nearest pairs.
        let view_r_a = vec![0.0, 0.0, 5.0, 5.0];
        let view_s_a = vec![0.1, 0.0, 9.0, 9.0];
        let view_r_b = vec![9.0, 9.0, 5.0, 5.0];
        let view_s_b = vec![5.1, 5.0, 0.0, 0.1];
        let set = index_by_committee(
            &[view_r_a, view_r_b],
            &[view_s_a, view_s_b],
            2,
            1,
            100,
            &IndexSpec::Flat,
        );
        // Member A proposes (0, 0); member B proposes (1, 0) / others —
        // the union must have pairs from both probes of both members.
        assert!(set.len() >= 3, "union too small: {}", set.len());
    }

    #[test]
    fn probe_blocking_is_invisible() {
        // More probes than one PROBE_BLOCK: the blocked path must produce
        // exactly what scoring one monolithic search_batch would.
        let dim = 2;
        let n_s = PROBE_BLOCK + 137;
        let er = emb(&(0..50)
            .map(|i| vec![i as f32, 0.5])
            .collect::<Vec<_>>()
            .iter()
            .map(|v| v.as_slice())
            .collect::<Vec<_>>());
        let es_rows: Vec<Vec<f32>> = (0..n_s).map(|i| vec![(i % 50) as f32 + 0.1, 0.4]).collect();
        let es = emb(&es_rows.iter().map(|v| v.as_slice()).collect::<Vec<_>>());

        let blocked = index_single(&er, &es, 3, usize::MAX, &IndexSpec::Flat);

        let index = IndexSpec::Flat.build(&er.data, dim, Metric::L2);
        let mut scored = Vec::new();
        score_probe_hits(&mut scored, index.search_batch(&es.data, 3), 0);
        let monolithic = CandidateSet::from_scored(scored, usize::MAX);

        assert_eq!(blocked.len(), monolithic.len());
        assert_eq!(blocked.pairs(), monolithic.pairs());
    }

    #[test]
    fn max_size_respected() {
        let er = emb(&[&[0.0f32, 0.0], &[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let es = er.clone();
        let set = index_single(&er, &es, 4, 5, &IndexSpec::Flat);
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn every_backend_yields_nonempty_candidates() {
        use crate::config::IndexBackend;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let dim = 8;
        let mut rng = StdRng::seed_from_u64(17);
        let mk = |n: usize, rng: &mut StdRng| ListEmbeddings {
            dim,
            data: (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        };
        let er = mk(60, &mut rng);
        let es = mk(40, &mut rng);
        // Two committee members, each with its own view of the SAME lists
        // (60-row R, 40-row S), as Committee::embed_list produces.
        let views_r = [er.data.clone(), mk(60, &mut rng).data];
        let views_s = [es.data.clone(), mk(40, &mut rng).data];
        for backend in IndexBackend::presets() {
            let spec = backend.spec(0);
            let single = index_single(&er, &es, 3, 1000, &spec);
            assert!(!single.is_empty(), "{}: empty single-index set", backend.label());
            let ibc = index_by_committee(&views_r, &views_s, dim, 3, 1000, &spec);
            assert!(!ibc.is_empty(), "{}: empty committee set", backend.label());
            assert!(
                ibc.pairs().iter().all(|c| (c.r as usize) < 60 && (c.s as usize) < 40),
                "{}: candidate ids outside list bounds",
                backend.label()
            );
        }
    }
}
