//! The DIAL active-learning loop (Algorithm 1).
//!
//! Each round: (1) reset all parameters to the pre-trained checkpoint (no
//! warm start, §4.2); (2) fine-tune the matcher on the labeled pairs
//! (Eq. 6); (3) build the candidate set with the configured blocking
//! strategy — for DIAL, retrain the committee on frozen trunk embeddings
//! and run Index-By-Committee; (4) evaluate blocker recall, test-set F1 and
//! all-pairs F1; (5) select `B` informative pairs (excluding
//! `Dtest ∩ cand`) and query the oracle.
//!
//! Per-operation wall-clock timings are recorded to reproduce Tables 9
//! and 10.

use crate::blocker::Committee;
use crate::candidates::{index_single, CandidateSet};
use crate::config::{BlockerObjective, BlockingStrategy, DialConfig, NegativeSource};
use crate::encode::encode_list;
use crate::engine::{RetrievalEngine, TuneConfig, TuningOutcome};
use crate::eval::{all_pairs_prf, blocker_recall, test_prf, Prf};
use crate::matcher::Matcher;
use crate::oracle::Oracle;
use crate::select::{select, SelectionInputs};
use dial_datasets::{EmDataset, LabeledPair};
use dial_tensor::{ParamStore, Snapshot};
use dial_text::{TokenId, Vocab};
use dial_tplm::{inject_alignment, pretrain_sgns, PretrainConfig, Tplm};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::HashSet;
use std::time::Instant;

/// Wall-clock seconds per operation in one round (Table 9's rows).
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundTimings {
    pub train_matcher: f64,
    pub train_committee: f64,
    pub indexing_retrieval: f64,
    pub selection: f64,
    /// Blocking + matching time over the candidate set — the paper's "RT"
    /// (time to find all duplicate pairs, Table 2) for this round.
    pub find_dups: f64,
    /// Seconds the retrieval engine spent building or refreshing member
    /// indexes this round (0 for the fixed-candidate strategies).
    pub index_build: f64,
    /// Seconds the engine spent probing member indexes. With the
    /// build/probe pipeline on, builds overlap probes, so
    /// `index_build + index_probe` can exceed `indexing_retrieval`.
    pub index_probe: f64,
    /// Committee members whose index was refreshed incrementally instead
    /// of rebuilt from scratch this round.
    pub incremental_members: usize,
    /// How much of the round's background snapshot I/O (loading member
    /// snapshots at warm start, saving them after the first build) hid
    /// behind foreground work, as `background_secs / selection_secs`
    /// capped at 1. `0` when snapshots are off or the round did no
    /// snapshot work; close to 1 means the I/O cost the loop nothing.
    pub overlap_ratio: f64,
}

/// Metrics captured after training/blocking in one round.
#[derive(Debug, Clone)]
pub struct RoundMetrics {
    pub round: usize,
    /// `|T|` used for this round's training.
    pub labels_used: usize,
    pub blocker_recall: f64,
    pub cand_size: usize,
    pub test: Prf,
    pub all_pairs: Prf,
    pub timings: RoundTimings,
}

/// Outcome of a full run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub rounds: Vec<RoundMetrics>,
    /// The retrieval engine's calibration record, when the run was
    /// auto-tuned and the index family had a knob to turn
    /// (`DialConfig::auto_tune` with an IVF-backed spec).
    pub tuning: Option<TuningOutcome>,
    /// Per-shard probe counters merged over the final round's committee
    /// indexes, when the spec was `Sharded` — probe balance and hedge
    /// activity of the run's retrieval fan-out. `None` for unsharded
    /// specs.
    pub shard_stats: Option<dial_ann::ShardStatsSnapshot>,
}

impl RunResult {
    /// Metrics of the final round.
    pub fn last(&self) -> &RoundMetrics {
        self.rounds.last().expect("run produced no rounds")
    }
}

/// The integrated matcher–blocker system.
pub struct DialSystem {
    pub config: DialConfig,
    store: ParamStore,
    model: Tplm,
    matcher: Matcher,
    committee: Committee,
    vocab: Vocab,
    pretrained: Option<Snapshot>,
}

impl DialSystem {
    /// Build the system: register all parameters and the hashed vocabulary.
    pub fn new(config: DialConfig) -> Self {
        config.validate();
        let mut store = ParamStore::new();
        let model = Tplm::new(config.tplm, &mut store);
        let matcher = Matcher::new(&mut store, &model);
        // SentenceBERT blocking uses a single unmasked head trained with the
        // classification objective; everything else gets the full committee.
        let committee = match config.blocking {
            BlockingStrategy::SentenceBert => {
                Committee::new(&mut store, 1, config.tplm.d_model, 1.0, config.seed)
            }
            _ => Committee::new(
                &mut store,
                config.committee,
                config.tplm.d_model,
                config.mask_p,
                config.seed,
            ),
        };
        let vocab = Vocab::new(config.tplm.vocab_size as u32 - Vocab::NUM_SPECIAL);
        DialSystem { config, store, model, matcher, committee, vocab, pretrained: None }
    }

    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Run the pre-training substitute over the unlabeled records of both
    /// lists (must precede [`DialSystem::run`]; called automatically if
    /// skipped). For the multilingual benchmark, pass the dictionary via
    /// [`DialSystem::align_embeddings`] *after* this.
    pub fn pretrain(&mut self, data: &EmDataset) {
        if self.config.pretrain_epochs > 0 {
            let max_len = self.config.tplm.max_len;
            let corpus: Vec<Vec<TokenId>> = data
                .r
                .iter()
                .chain(data.s.iter())
                .map(|rec| rec.single_mode_ids(&self.vocab, max_len))
                .collect();
            pretrain_sgns(
                &mut self.store,
                self.model.token_embedding_param(),
                self.config.tplm.vocab_size,
                &corpus,
                PretrainConfig {
                    epochs: self.config.pretrain_epochs,
                    seed: self.config.seed,
                    ..Default::default()
                },
            );
        }
        self.pretrained = Some(self.store.snapshot());
    }

    /// Simulate multilingual-BERT alignment: tie translated token
    /// embeddings up to `noise_std`. Refreshes the pre-trained checkpoint.
    pub fn align_embeddings(&mut self, pairs: &[(TokenId, TokenId)], noise_std: f32) {
        inject_alignment(
            &mut self.store,
            self.model.token_embedding_param(),
            pairs,
            noise_std,
            self.config.seed ^ 0xa119,
        );
        self.pretrained = Some(self.store.snapshot());
    }

    /// Execute the active-learning loop. `rule_pairs` supplies the fixed
    /// candidate set for [`BlockingStrategy::Rules`].
    pub fn run(&mut self, data: &EmDataset, rule_pairs: Option<&[(u32, u32)]>) -> RunResult {
        if self.pretrained.is_none() {
            self.pretrain(data);
        }
        let cfg = self.config.clone();
        // Every retrieval index holds one view of R, so Auto resolves
        // against |R| (per shard, when sharded); the engine persists
        // across rounds, carrying each member's index and embedding
        // cache from round to round. With `auto_tune` on, the engine
        // also calibrates IVF-backed specs from observed recall before
        // the first retrieval.
        let index_spec = cfg.index_spec_for(data.r.len());
        let mut engine = if cfg.auto_tune {
            RetrievalEngine::with_tuning(
                index_spec.clone(),
                cfg.incremental_threshold,
                cfg.pipeline_depth,
                TuneConfig {
                    recall_target: cfg.tune_recall_target,
                    sample: cfg.tune_sample,
                    ..TuneConfig::default()
                },
            )
        } else {
            RetrievalEngine::new(index_spec.clone(), cfg.incremental_threshold, cfg.pipeline_depth)
        };
        engine.set_rows(cfg.row_format);
        // Snapshot persistence / warm start: the loader thread spawned
        // here overlaps round-0 matcher + committee training below, so a
        // warm run's snapshot reads are off the critical path entirely.
        engine.set_snapshot(cfg.snapshot_dir.clone(), cfg.warm_start, cfg.tplm.d_model);
        let cand_cap = cfg.cand_size.resolve(data.s.len(), data.dups().len(), cfg.abt_buy_like);
        let k = if cfg.abt_buy_like { cfg.k.max(20) } else { cfg.k };

        let mut oracle = Oracle::new(data);
        let mut labeled: Vec<LabeledPair> = data.seed_labeled(cfg.seed_pos, cfg.seed_neg, cfg.seed);
        let test_keys = data.test_keys();

        // PairedFixed: candidates from the pre-trained embeddings, computed
        // once.
        let fixed_cand: Option<CandidateSet> = match cfg.blocking {
            BlockingStrategy::PairedFixed => {
                let snap = self.pretrained.as_ref().unwrap().clone();
                self.store.restore(&snap);
                let er = encode_list(&self.model, &self.store, &data.r, &self.vocab);
                let es = encode_list(&self.model, &self.store, &data.s, &self.vocab);
                Some(index_single(&er, &es, k, cand_cap, &index_spec))
            }
            BlockingStrategy::Rules => Some(CandidateSet::from_pairs(
                rule_pairs.expect("Rules strategy requires rule_pairs"),
            )),
            _ => None,
        };

        let mut rounds = Vec::with_capacity(cfg.rounds);
        for round in 0..cfg.rounds {
            // (1) Reset to pre-trained weights.
            let snap = self.pretrained.as_ref().unwrap();
            self.store.restore(snap);

            // (2) Train the matcher.
            let t0 = Instant::now();
            self.matcher.train(
                &mut self.store,
                &self.model,
                &self.vocab,
                &data.r,
                &data.s,
                &labeled,
                &cfg,
                round,
            );
            let train_matcher = t0.elapsed().as_secs_f64();

            // (3) Blocking.
            let mut train_committee = 0.0;
            let t_block = Instant::now();
            let cand = match cfg.blocking {
                BlockingStrategy::PairedFixed | BlockingStrategy::Rules => {
                    fixed_cand.clone().unwrap()
                }
                BlockingStrategy::PairedAdapt => {
                    let er = encode_list(&self.model, &self.store, &data.r, &self.vocab);
                    let es = encode_list(&self.model, &self.store, &data.s, &self.vocab);
                    engine.retrieve_single(&er, &es, k, cand_cap)
                }
                // SentenceBERT blocking is DIAL's committee pass with a
                // different training recipe (classification objective on
                // the labeled negatives); everything else — encode,
                // reinit, frozen-trunk training, embed, retrieve — is
                // the same pipeline.
                BlockingStrategy::SentenceBert => {
                    let sbert_cfg = DialConfig {
                        objective: BlockerObjective::Classification,
                        negatives: NegativeSource::Labeled,
                        ..cfg.clone()
                    };
                    self.committee_round(
                        &mut engine,
                        data,
                        &labeled,
                        &sbert_cfg,
                        round,
                        k,
                        cand_cap,
                        &mut train_committee,
                    )
                }
                BlockingStrategy::Dial => self.committee_round(
                    &mut engine,
                    data,
                    &labeled,
                    &cfg,
                    round,
                    k,
                    cand_cap,
                    &mut train_committee,
                ),
            };
            let indexing_retrieval = t_block.elapsed().as_secs_f64() - train_committee;
            let (index_build, index_probe, incremental_members) = match cfg.blocking {
                BlockingStrategy::PairedFixed | BlockingStrategy::Rules => (0.0, 0.0, 0),
                _ => {
                    let st = engine.last_round();
                    (st.build_secs, st.probe_secs, st.incremental_members)
                }
            };

            // (4) Matcher probabilities over the candidate set (drives both
            // evaluation and selection).
            let t_match = Instant::now();
            let scored: Vec<(f32, Vec<f32>)> = cand
                .pairs()
                .par_iter()
                .map(|c| {
                    self.matcher.prob_and_feature(
                        &self.store,
                        &self.model,
                        &self.vocab,
                        data.r.get(c.r),
                        data.s.get(c.s),
                    )
                })
                .collect();
            let matching_time = t_match.elapsed().as_secs_f64();
            let probs: Vec<f32> = scored.iter().map(|(p, _)| *p).collect();
            let feats: Vec<Vec<f32>> = scored.into_iter().map(|(_, f)| f).collect();

            let cand_keys = cand.key_set();
            let predicted: HashSet<(u32, u32)> = cand
                .pairs()
                .iter()
                .zip(&probs)
                .filter(|(_, &p)| p > 0.5)
                .map(|(c, _)| (c.r, c.s))
                .collect();

            // Test-set prediction: in cand AND matcher-positive.
            let test_preds: HashSet<(u32, u32)> = data
                .test
                .par_iter()
                .filter(|p| cand_keys.contains(&p.key()))
                .map(|p| {
                    (
                        p,
                        self.matcher.prob(
                            &self.store,
                            &self.model,
                            &self.vocab,
                            data.r.get(p.r),
                            data.s.get(p.s),
                        ),
                    )
                })
                .filter(|(_, prob)| *prob > 0.5)
                .map(|(p, _)| p.key())
                .collect();

            let metrics = RoundMetrics {
                round,
                labels_used: labeled.len(),
                blocker_recall: blocker_recall(data, &cand_keys),
                cand_size: cand.len(),
                test: test_prf(&data.test, &test_preds),
                all_pairs: all_pairs_prf(data, &predicted),
                timings: RoundTimings {
                    train_matcher,
                    train_committee,
                    indexing_retrieval,
                    selection: 0.0,
                    find_dups: train_committee + indexing_retrieval + matching_time,
                    index_build,
                    index_probe,
                    incremental_members,
                    overlap_ratio: 0.0,
                },
            };
            rounds.push(metrics);

            // (5) Select and label (skipped after the final round).
            if round + 1 < cfg.rounds {
                let t_sel = Instant::now();
                let mut excluded: HashSet<(u32, u32)> = test_keys.clone();
                excluded.extend(labeled.iter().map(|p| p.key()));
                let labeled_feats: Vec<(Vec<f32>, bool)> = labeled
                    .par_iter()
                    .map(|p| {
                        let (_, f) = self.matcher.prob_and_feature(
                            &self.store,
                            &self.model,
                            &self.vocab,
                            data.r.get(p.r),
                            data.s.get(p.s),
                        );
                        (f, p.label)
                    })
                    .collect();
                let inputs = SelectionInputs {
                    cands: cand.pairs(),
                    probs: &probs,
                    feats: &feats,
                    labeled_feats: &labeled_feats,
                    excluded: &excluded,
                    budget: cfg.budget,
                };
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5e1e ^ (round as u64) << 16);
                let picked = select(cfg.selection, &inputs, &mut rng);
                let timings = &mut rounds.last_mut().unwrap().timings;
                timings.selection = t_sel.elapsed().as_secs_f64();
                // Cross-round overlap won: background snapshot work
                // (round-0 loads rode behind training, saves behind this
                // selection stage) relative to the foreground stage it
                // hid behind. Joining here — not earlier — is what keeps
                // the saver off the critical path.
                let bg = engine.take_background_secs();
                if bg > 0.0 && timings.selection > 0.0 {
                    timings.overlap_ratio = (bg / timings.selection).min(1.0);
                }
                labeled.extend(oracle.label_batch(&picked));
            }
        }
        RunResult {
            rounds,
            tuning: engine.last_tuning().cloned(),
            shard_stats: engine.shard_stats(),
        }
    }

    /// One committee blocking pass — the shared body of the DIAL and
    /// SentenceBERT arms, which differ only in the training-config delta
    /// (`blocker_cfg`): encode both lists with the current trunk,
    /// re-initialize the committee, train it on frozen-trunk embeddings,
    /// embed both lists per member, and run Index-By-Committee through
    /// the persistent retrieval `engine`. Committee-training seconds
    /// land in `train_committee`.
    #[allow(clippy::too_many_arguments)]
    fn committee_round(
        &mut self,
        engine: &mut RetrievalEngine,
        data: &EmDataset,
        labeled: &[LabeledPair],
        blocker_cfg: &DialConfig,
        round: usize,
        k: usize,
        cand_cap: usize,
        train_committee: &mut f64,
    ) -> CandidateSet {
        let er = encode_list(&self.model, &self.store, &data.r, &self.vocab);
        let es = encode_list(&self.model, &self.store, &data.s, &self.vocab);
        let t1 = Instant::now();
        self.committee.reinit(&mut self.store, self.config.seed ^ (round as u64) << 8);
        self.model.set_trunk_frozen(&mut self.store, true);
        self.committee.train(&mut self.store, &er, &es, labeled, blocker_cfg, round);
        self.model.set_trunk_frozen(&mut self.store, false);
        *train_committee = t1.elapsed().as_secs_f64();
        let vr = self.committee.embed_list(&self.store, &er);
        let vs = self.committee.embed_list(&self.store, &es);
        engine.retrieve_committee(&vr, &vs, self.config.tplm.d_model, k, cand_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dial_datasets::{Benchmark, ScaleProfile};

    fn smoke_run(blocking: BlockingStrategy) -> RunResult {
        let data = Benchmark::AbtBuy.generate(ScaleProfile::Smoke, 1);
        let cfg = DialConfig { blocking, ..DialConfig::smoke() };
        let mut sys = DialSystem::new(cfg);
        let rules = data
            .stats()
            .name
            .starts_with("Abt")
            .then(|| dial_datasets::rule_candidates(&data, dial_datasets::RuleKind::Product));
        sys.run(&data, rules.as_deref())
    }

    #[test]
    fn dial_smoke_run_completes_with_sane_metrics() {
        let result = smoke_run(BlockingStrategy::Dial);
        assert_eq!(result.rounds.len(), 2);
        for m in &result.rounds {
            assert!((0.0..=1.0).contains(&m.blocker_recall));
            assert!((0.0..=1.0).contains(&m.all_pairs.f1));
            assert!(m.cand_size > 0);
        }
        // Labels grow between rounds.
        assert!(result.rounds[1].labels_used > result.rounds[0].labels_used);
    }

    #[test]
    fn all_blocking_strategies_complete() {
        for b in [
            BlockingStrategy::PairedFixed,
            BlockingStrategy::PairedAdapt,
            BlockingStrategy::SentenceBert,
            BlockingStrategy::Rules,
        ] {
            let r = smoke_run(b);
            assert_eq!(r.rounds.len(), 2, "{b:?} wrong round count");
        }
    }

    #[test]
    fn paired_fixed_recall_constant_across_rounds() {
        let r = smoke_run(BlockingStrategy::PairedFixed);
        assert_eq!(r.rounds[0].blocker_recall, r.rounds[1].blocker_recall);
    }

    #[test]
    fn auto_tuned_run_records_calibration() {
        use crate::config::IndexBackend;
        let data = Benchmark::AbtBuy.generate(ScaleProfile::Smoke, 1);
        let cfg = DialConfig {
            auto_tune: true,
            index_backend: IndexBackend::IvfFlat { nlist: 8, nprobe: 1 },
            tune_sample: 64,
            ..DialConfig::smoke()
        };
        let mut sys = DialSystem::new(cfg);
        let result = sys.run(&data, None);
        let t = result.tuning.as_ref().expect("an IVF run under --auto-tune must calibrate");
        assert!(t.chosen_recall >= t.static_recall, "{t:?}");
        assert!(t.chosen_width >= 1 && t.chosen_width <= t.ceiling);
        assert!(!t.steps.is_empty());
        // The untuned run keeps no record.
        let data2 = Benchmark::AbtBuy.generate(ScaleProfile::Smoke, 1);
        let mut plain = DialSystem::new(DialConfig::smoke());
        assert!(plain.run(&data2, None).tuning.is_none());
    }

    #[test]
    fn timings_are_recorded() {
        let r = smoke_run(BlockingStrategy::Dial);
        let t = &r.rounds[0].timings;
        assert!(t.train_matcher > 0.0);
        assert!(t.train_committee > 0.0);
        assert!(t.find_dups > 0.0);
        assert!(r.rounds[0].timings.selection > 0.0, "non-final round must time selection");
    }

    #[test]
    fn warm_started_run_follows_the_cold_trajectory_exactly() {
        // A run that saved snapshots, then a second identical run warm-
        // started from them: every round's recall, F1, candidate count,
        // and label count must be bitwise the cold run's — warm start
        // changes when indexing work happens, never what is retrieved.
        let dir = std::env::temp_dir().join(format!("dial_al_snap_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let data = Benchmark::AbtBuy.generate(ScaleProfile::Smoke, 1);
        let run = |snapshot_dir: Option<std::path::PathBuf>, warm_start: bool| {
            let cfg = DialConfig { snapshot_dir, warm_start, ..DialConfig::smoke() };
            DialSystem::new(cfg).run(&data, None)
        };
        let cold = run(Some(dir.clone()), false);
        assert!(dir.join("member-0.snap").exists(), "round-0 members must be persisted");
        let warm = run(Some(dir.clone()), true);
        let plain = run(None, false);
        let key = |r: &RunResult| {
            r.rounds
                .iter()
                .map(|m| {
                    (
                        m.labels_used,
                        m.cand_size,
                        m.blocker_recall.to_bits(),
                        m.test.f1.to_bits(),
                        m.all_pairs.f1.to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&warm), key(&cold), "warm start must not change the trajectory");
        assert_eq!(key(&plain), key(&cold), "snapshot saving must not change the trajectory");
        // The warm run skipped round-0 rebuilds: its first round took the
        // incremental path for every member, and the snapshot I/O it did
        // do is accounted to the overlap ratio.
        assert_eq!(
            warm.rounds[0].timings.incremental_members,
            DialConfig::smoke().committee,
            "warm start must refresh, not rebuild, in round 0"
        );
        assert!(warm.rounds[0].timings.overlap_ratio > 0.0);
        assert!(warm.rounds[0].timings.overlap_ratio <= 1.0);
        assert_eq!(plain.rounds[0].timings.overlap_ratio, 0.0, "no snapshots, no overlap");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
