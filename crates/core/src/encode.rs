//! Parallel single-mode encoding of whole record lists.
//!
//! Every blocking strategy needs `E(x)` for each record of `R` and `S` at
//! least once per round; this module computes them with rayon across
//! records (the trunk is read-only during encoding) and returns a packed
//! row-major matrix compatible with `dial-ann` indexes.

use dial_tensor::ParamStore;
use dial_text::{RecordList, Vocab};
use dial_tplm::Tplm;
use rayon::prelude::*;

/// Packed `[n, d]` embeddings of a record list.
#[derive(Debug, Clone)]
pub struct ListEmbeddings {
    pub dim: usize,
    /// Row-major `n * dim` buffer; row `i` is record id `i`.
    pub data: Vec<f32>,
}

impl ListEmbeddings {
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Embedding of record `id`.
    pub fn row(&self, id: u32) -> &[f32] {
        let i = id as usize * self.dim;
        &self.data[i..i + self.dim]
    }
}

/// Encode every record of `list` in single mode with the current trunk
/// weights.
pub fn encode_list(
    model: &Tplm,
    store: &ParamStore,
    list: &RecordList,
    vocab: &Vocab,
) -> ListEmbeddings {
    let max_len = model.config().max_len;
    let dim = model.config().d_model;
    let rows: Vec<Vec<f32>> = list
        .records()
        .par_iter()
        .map(|rec| model.embed_single(store, &rec.single_mode_ids(vocab, max_len)))
        .collect();
    let mut data = Vec::with_capacity(rows.len() * dim);
    for r in rows {
        debug_assert_eq!(r.len(), dim);
        data.extend_from_slice(&r);
    }
    ListEmbeddings { dim, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dial_text::Schema;
    use dial_tplm::TplmConfig;

    #[test]
    fn encodes_all_records_in_order() {
        let mut store = ParamStore::new();
        let model = Tplm::new(TplmConfig::tiny(), &mut store);
        let vocab = Vocab::new(64);
        let mut list = RecordList::new(Schema::new(vec!["t"]));
        list.push(vec!["alpha beta".into()]);
        list.push(vec!["gamma delta".into()]);
        list.push(vec!["alpha beta".into()]);

        let emb = encode_list(&model, &store, &list, &vocab);
        assert_eq!(emb.len(), 3);
        assert_eq!(emb.dim, 16);
        // Identical records embed identically; different ones differ.
        assert_eq!(emb.row(0), emb.row(2));
        assert_ne!(emb.row(0), emb.row(1));
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut store = ParamStore::new();
        let model = Tplm::new(TplmConfig::tiny(), &mut store);
        let vocab = Vocab::new(64);
        let mut list = RecordList::new(Schema::new(vec!["t"]));
        for i in 0..20 {
            list.push(vec![format!("record number {i} with words")]);
        }
        let emb = encode_list(&model, &store, &list, &vocab);
        for rec in list.iter().take(5) {
            let direct =
                model.embed_single(&store, &rec.single_mode_ids(&vocab, model.config().max_len));
            assert_eq!(emb.row(rec.id), direct.as_slice());
        }
    }
}
