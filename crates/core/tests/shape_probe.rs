//! Manual calibration probe (run with --ignored): compares blocking
//! strategies on one bench-scale dataset.
use dial_core::*;
use dial_datasets::*;

#[test]
#[ignore = "slow calibration probe; run explicitly"]
fn shape_probe() {
    let which = std::env::var("DS").unwrap_or_else(|_| "WA".into());
    let b = match which.as_str() {
        "WA" => Benchmark::WalmartAmazon,
        "AG" => Benchmark::AmazonGoogle,
        "DA" => Benchmark::DblpAcm,
        "DS" => Benchmark::DblpScholar,
        "AB" => Benchmark::AbtBuy,
        _ => Benchmark::Multilingual,
    };
    let data = b.generate(ScaleProfile::Bench, 0);
    println!(
        "dataset {} |R|={} |S|={} dups={}",
        data.name,
        data.r.len(),
        data.s.len(),
        data.dups().len()
    );
    let rules = b.rule_kind().map(|k| rule_candidates(&data, k));
    if let Some(r) = &rules {
        println!("rules: {} pairs, recall {:.3}", r.len(), candidate_recall(&data, r));
    }
    let rounds: usize = std::env::var("ROUNDS").map(|v| v.parse().unwrap()).unwrap_or(3);
    for strat in [
        BlockingStrategy::Dial,
        BlockingStrategy::PairedFixed,
        BlockingStrategy::PairedAdapt,
        BlockingStrategy::SentenceBert,
    ] {
        let cfg = DialConfig {
            blocking: strat,
            rounds,
            abt_buy_like: matches!(b, Benchmark::AbtBuy),
            ..DialConfig::default()
        };
        let t0 = std::time::Instant::now();
        let mut sys = DialSystem::new(cfg);
        let res = sys.run(&data, rules.as_deref());
        let m = res.last();
        println!(
            "{strat:?}: recall={:.3} testF1={:.3} allF1={:.3} (P={:.3} R={:.3}) cand={} took {:.1}s",
            m.blocker_recall, m.test.f1, m.all_pairs.f1, m.all_pairs.precision, m.all_pairs.recall,
            m.cand_size, t0.elapsed().as_secs_f64()
        );
        for r in &res.rounds {
            println!(
                "  round {} labels {} recall {:.3} testF1 {:.3} allP {:.3} allR {:.3}",
                r.round,
                r.labels_used,
                r.blocker_recall,
                r.test.f1,
                r.all_pairs.precision,
                r.all_pairs.recall
            );
        }
    }
}
