//! Calibration probe (ignored): matcher discrimination (AUC, P/R at 0.5)
//! on a bench-scale dataset. Knobs: EP, LRH, LRT, NL.
use dial_core::*;
use dial_datasets::*;
use dial_tensor::*;
use dial_text::Vocab;
use dial_tplm::*;

#[test]
#[ignore]
fn matcher_discrimination() {
    let data = Benchmark::WalmartAmazon.generate(ScaleProfile::Bench, 1);
    let ep: usize = std::env::var("EP").map(|v| v.parse().unwrap()).unwrap_or(10);
    let lrh: f32 = std::env::var("LRH").map(|v| v.parse().unwrap()).unwrap_or(1e-2);
    let lrt: f32 = std::env::var("LRT").map(|v| v.parse().unwrap()).unwrap_or(1e-3);
    let nl: usize = std::env::var("NL").map(|v| v.parse().unwrap()).unwrap_or(60);
    let cfg =
        DialConfig { matcher_epochs: ep, lr_head: lrh, lr_trunk: lrt, ..DialConfig::default() };
    let mut store = ParamStore::new();
    let model = Tplm::new(cfg.tplm, &mut store);
    let matcher = Matcher::new(&mut store, &model);
    let vocab = Vocab::new(cfg.tplm.vocab_size as u32 - Vocab::NUM_SPECIAL);
    // pretrain like the system does
    let corpus: Vec<Vec<u32>> = data
        .r
        .iter()
        .chain(data.s.iter())
        .map(|r| r.single_mode_ids(&vocab, cfg.tplm.max_len))
        .collect();
    pretrain_sgns(
        &mut store,
        model.token_embedding_param(),
        cfg.tplm.vocab_size,
        &corpus,
        PretrainConfig { epochs: 2, ..Default::default() },
    );
    let labeled = data.seed_labeled(nl, nl, 0);
    let loss = matcher.train(&mut store, &model, &vocab, &data.r, &data.s, &labeled, &cfg, 0);
    // test separation
    let mut pos = vec![];
    let mut neg = vec![];
    for p in &data.test {
        let prob = matcher.prob(&store, &model, &vocab, data.r.get(p.r), data.s.get(p.s));
        if p.label {
            pos.push(prob)
        } else {
            neg.push(prob)
        }
    }
    pos.sort_by(|a, b| a.partial_cmp(b).unwrap());
    neg.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // AUC estimate
    let mut auc = 0.0;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                auc += 1.0
            } else if p == n {
                auc += 0.5
            }
        }
    }
    auc /= (pos.len() * neg.len()) as f64;
    let prf = {
        let tp = pos.iter().filter(|&&p| p > 0.5).count();
        let fp = neg.iter().filter(|&&p| p > 0.5).count();
        Prf::from_counts(tp, tp + fp, pos.len())
    };
    println!(
        "loss {loss:.3} AUC {auc:.3} med_pos {:.3} med_neg {:.3} test P {:.3} R {:.3} F1 {:.3}",
        pos[pos.len() / 2],
        neg[neg.len() / 2],
        prf.precision,
        prf.recall,
        prf.f1
    );
}
