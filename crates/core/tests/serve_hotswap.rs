//! End-to-end "serve round r while round r+1 trains" hand-off: the
//! engine clones a member index for serving without giving up its own
//! state, the service caches hot queries against it, and a post-round
//! [`QueryService::install_index`] hot-swap retires every cached result
//! — the next identical query rescans against the new index, never the
//! stale cache.

use dial_ann::IndexSpec;
use dial_core::{QueryService, RetrievalEngine, ServeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn views(members: usize, rows: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..members).map(|_| (0..rows * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

#[test]
fn engine_round_serves_and_hot_swaps_without_stale_results() {
    let dim = 4;
    let k = 3;
    let mut engine = RetrievalEngine::new(IndexSpec::Flat, 0.25, 0);
    let views_s = views(2, 18, dim, 11);

    // Round r: train, then clone member 0's index for serving. The
    // clone round-trips through the snapshot blob, so it probes
    // bitwise-identically to the member — and the member stays put.
    let mut views_r = views(2, 30, dim, 10);
    engine.retrieve_committee(&views_r, &views_s, dim, k, 400);
    let serving = engine.clone_member_index(0).expect("member 0 is built");
    let reference_r = engine.clone_member_index(0).expect("second clone");

    let svc = QueryService::new(
        serving,
        ServeConfig { workers: 0, default_deadline: None, ..ServeConfig::default() },
    );
    let hot: Vec<f32> = views_s[0][..dim].to_vec();

    // Serve the hot query twice: the repeat must come from the cache.
    let t1 = svc.submit(hot.clone(), k, None).unwrap();
    svc.pump();
    let t2 = svc.submit(hot.clone(), k, None).unwrap();
    svc.pump();
    let want_r = reference_r.search(&hot, k);
    for t in [t1, t2] {
        let got = t.wait().unwrap().hits;
        assert_eq!(got.len(), want_r.len());
        for (g, w) in got.iter().zip(&want_r) {
            assert_eq!((g.id, g.distance.to_bits()), (w.id, w.distance.to_bits()));
        }
    }
    let s = svc.stats();
    assert_eq!((s.scanned, s.hits), (1, 1), "the repeat must be a cache hit: {s:?}");
    assert_eq!(svc.generation(), 0);

    // Round r+1 trains while the service keeps answering: drift member
    // 0's view hard so its index genuinely changes, retrain, and
    // hot-swap a fresh clone into the service.
    for v in views_r[0].iter_mut() {
        *v = -*v + 0.75;
    }
    engine.retrieve_committee(&views_r, &views_s, dim, k, 400);
    let next = engine.clone_member_index(0).expect("retrained member clones");
    let reference_r1 = engine.clone_member_index(0).expect("reference clone");
    svc.install_index(next).expect("same dimensionality installs");
    assert_eq!(svc.generation(), 1, "a hot swap bumps the generation");

    // The very next identical query must rescan against the NEW index:
    // no stale-generation cache entry may be served.
    let t3 = svc.submit(hot.clone(), k, None).unwrap();
    svc.pump();
    let got = t3.wait().unwrap().hits;
    let want_r1 = reference_r1.search(&hot, k);
    assert_eq!(got.len(), want_r1.len());
    for (g, w) in got.iter().zip(&want_r1) {
        assert_eq!(
            (g.id, g.distance.to_bits()),
            (w.id, w.distance.to_bits()),
            "post-swap response must come from the round-(r+1) index"
        );
    }
    let s = svc.stats();
    assert_eq!(s.hits, 1, "no cache hit may cross the swap");
    assert_eq!(s.scanned, 2, "the post-swap query paid a fresh scan");
    assert!(s.invalidations >= 1, "the stale entry is removed on discovery: {s:?}");
    assert!(s.accounting_closes(), "{s:?}");

    // And the swap repeats: the rescanned result is cached at the new
    // generation, so the next repeat hits again.
    let t4 = svc.submit(hot, k, None).unwrap();
    svc.pump();
    assert!(t4.wait().is_ok());
    assert_eq!(svc.stats().hits, 2, "caching resumes at the new generation");

    // The engine never lost its member to the serving clones: an
    // unchanged round takes the incremental path for both members.
    engine.retrieve_committee(&views_r, &views_s, dim, k, 400);
    assert_eq!(
        engine.last_round().incremental_members,
        2,
        "cloning for serving must not detach engine state"
    );
}
