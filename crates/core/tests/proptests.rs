//! Property-based tests for evaluation metrics, selection invariants,
//! and the persistent retrieval engine.

use dial_ann::IndexSpec;
use dial_core::{
    entropy, index_by_committee, select, Candidate, Prf, RetrievalEngine, SelectionInputs,
    SelectionStrategy,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

proptest! {
    #[test]
    fn prf_always_in_unit_range(tp in 0usize..50, extra_pred in 0usize..50, extra_gold in 0usize..50) {
        let p = Prf::from_counts(tp, tp + extra_pred, tp + extra_gold);
        prop_assert!((0.0..=1.0).contains(&p.precision));
        prop_assert!((0.0..=1.0).contains(&p.recall));
        prop_assert!((0.0..=1.0).contains(&p.f1));
        // F1 is between min and max of P and R (harmonic-mean property).
        let lo = p.precision.min(p.recall);
        let hi = p.precision.max(p.recall);
        prop_assert!(p.f1 >= lo - 1e-12 && p.f1 <= hi + 1e-12);
    }

    #[test]
    fn entropy_symmetric_and_bounded(p in 0.0f32..1.0) {
        let e = entropy(p);
        prop_assert!(e >= 0.0);
        prop_assert!(e <= 2.0f32.ln() + 1e-5);
        prop_assert!((e - entropy(1.0 - p)).abs() < 1e-4);
    }

    #[test]
    fn selection_respects_budget_and_exclusions(
        n in 5usize..40,
        budget in 0usize..20,
        strat_ix in 0usize..7,
        seed in 0u64..100,
    ) {
        let strategies = [
            SelectionStrategy::Random,
            SelectionStrategy::Greedy,
            SelectionStrategy::Uncertainty,
            SelectionStrategy::Qbc,
            SelectionStrategy::Partition2,
            SelectionStrategy::Partition4,
            SelectionStrategy::Badge,
        ];
        let cands: Vec<Candidate> = (0..n as u32)
            .map(|i| Candidate { r: i, s: i, distance: i as f32 * 0.1, rank: 0 })
            .collect();
        let probs: Vec<f32> = (0..n).map(|i| (i as f32 / n as f32).clamp(0.01, 0.99)).collect();
        let feats: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32, 1.0]).collect();
        let labeled: Vec<(Vec<f32>, bool)> =
            (0..6).map(|i| (vec![i as f32, 1.0], i % 2 == 0)).collect();
        let excluded: HashSet<(u32, u32)> =
            (0..n as u32).filter(|i| i % 3 == 0).map(|i| (i, i)).collect();
        let inputs = SelectionInputs {
            cands: &cands,
            probs: &probs,
            feats: &feats,
            labeled_feats: &labeled,
            excluded: &excluded,
            budget,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let out = select(strategies[strat_ix], &inputs, &mut rng);
        prop_assert!(out.len() <= budget);
        prop_assert!(out.iter().all(|p| !excluded.contains(p)));
        // No duplicates in the selection.
        let set: HashSet<_> = out.iter().collect();
        prop_assert_eq!(set.len(), out.len());
    }

    #[test]
    fn incremental_refresh_at_drift_zero_is_bit_identical_to_rebuild(
        vr_raw in proptest::collection::vec(-2.0f32..2.0, 2 * 30 * 4),
        vs_raw in proptest::collection::vec(-2.0f32..2.0, 2 * 18 * 4),
        k in 1usize..5,
        depth in 0usize..3,
        shards in 1usize..4,
    ) {
        // The tentpole exactness guarantee: retrieving twice with
        // unchanged committee views — the second round taking the
        // incremental refresh path (drift = 0) — must yield a
        // CandidateSet bit-identical to the from-scratch rebuild, across
        // pipeline depths and shard counts.
        let dim = 4;
        let views_r: Vec<Vec<f32>> = vr_raw.chunks(30 * dim).map(<[f32]>::to_vec).collect();
        let views_s: Vec<Vec<f32>> = vs_raw.chunks(18 * dim).map(<[f32]>::to_vec).collect();
        let spec = if shards > 1 { IndexSpec::Flat.sharded(shards) } else { IndexSpec::Flat };

        let mut engine = RetrievalEngine::new(spec.clone(), 0.0, depth);
        let rebuilt = engine.retrieve_committee(&views_r, &views_s, dim, k, 400);
        prop_assert_eq!(engine.last_round().incremental_members, 0);
        let refreshed = engine.retrieve_committee(&views_r, &views_s, dim, k, 400);
        prop_assert_eq!(
            engine.last_round().incremental_members, 2,
            "drift 0 must take the incremental path"
        );
        prop_assert_eq!(rebuilt.pairs(), refreshed.pairs());
        // And both equal the stateless reference implementation.
        let reference = index_by_committee(&views_r, &views_s, dim, k, 400, &spec);
        prop_assert_eq!(refreshed.pairs(), reference.pairs());
    }
}

proptest! {
    #[test]
    fn served_responses_bitwise_match_direct_search_through_the_queue(
        rows in proptest::collection::vec(-2.0f32..2.0, 40 * 4..120 * 4),
        qraw in proptest::collection::vec(-2.0f32..2.0, 2 * 4..10 * 4),
        n_req in 1usize..40,
        workers in 0usize..4,
        batch_max in 1usize..9,
        cache_entries in 0usize..8,
        seed in 0u64..50,
    ) {
        // The serving-layer exactness guarantee: whatever batches the
        // admission queue coalesces, however many workers race over
        // them, and whatever the result cache holds (disabled, smaller
        // than the pool, or covering it), every response is bitwise
        // identical to a direct single-query `search` on the same index
        // — ids and f32 distance bits both. Requests draw with heavy
        // repetition from a small pool, so cache hits, in-batch
        // duplicates, and evictions all genuinely occur, and the serve
        // accounting (`served == scanned + hits + coalesced`) must
        // close over whichever mix this case produced.
        let dim = 4;
        let rows = &rows[..rows.len() / dim * dim];
        let pool: Vec<Vec<f32>> =
            qraw.chunks_exact(dim).map(<[f32]>::to_vec).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let requests: Vec<(usize, usize)> = (0..n_req)
            .map(|_| (rng.gen_range(0..pool.len()), rng.gen_range(1..8)))
            .collect();

        let build = || {
            let mut ix = dial_ann::FlatIndex::new(dim, Default::default());
            ix.add_batch(rows);
            ix
        };
        let reference = build();
        let svc = dial_core::QueryService::new(
            Box::new(build()),
            dial_core::ServeConfig {
                queue_capacity: requests.len(),
                batch_max,
                workers,
                default_deadline: None,
                cache_entries,
                cache_bytes: 0,
            },
        );
        let tickets: Vec<dial_core::Ticket> = requests
            .iter()
            .map(|&(q, k)| svc.submit(pool[q].clone(), k, None).unwrap())
            .collect();
        if workers == 0 {
            svc.pump();
        }
        let stats = svc.shutdown();
        prop_assert_eq!(stats.served as usize, requests.len());
        prop_assert!(stats.accounting_closes(), "stats must close: {:?}", stats);
        for (ticket, &(q, k)) in tickets.into_iter().zip(&requests) {
            let got = ticket.wait().unwrap().hits;
            let want = reference.search(&pool[q], k);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.id, w.id);
                prop_assert_eq!(g.distance.to_bits(), w.distance.to_bits());
            }
        }
    }
}
