//! Backend-parity tests for the trait-based retrieval path.
//!
//! The `IndexBackend::Flat` path must reproduce the pre-refactor candidate
//! sets bit-for-bit: the old code built `FlatIndex` directly inside
//! `index_by_committee` / `index_single`; the reference implementations
//! below are copies of that code, and the trait path is checked against
//! them pair-for-pair (ids, distances, and ranks).

use dial_ann::{FlatIndex, IndexSpec, IvfParams, Metric};
use dial_core::encode::ListEmbeddings;
use dial_core::{index_by_committee, index_single, Candidate, CandidateSet, IndexBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_view(n: usize, dim: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// The pre-refactor `index_by_committee` body (hard-coded `FlatIndex`).
fn prerefactor_index_by_committee(
    views_r: &[Vec<f32>],
    views_s: &[Vec<f32>],
    dim: usize,
    k: usize,
    max_size: usize,
) -> CandidateSet {
    let mut scored = Vec::new();
    for (vr, vs) in views_r.iter().zip(views_s) {
        let mut index = FlatIndex::new(dim, Metric::L2);
        index.add_batch(vr);
        let hits = index.search_batch(vs, k);
        for (s_id, hs) in hits.into_iter().enumerate() {
            for (rank, h) in hs.into_iter().enumerate() {
                scored.push(Candidate {
                    r: h.id,
                    s: s_id as u32,
                    distance: h.distance,
                    rank: rank as u32,
                });
            }
        }
    }
    CandidateSet::from_scored(scored, max_size)
}

/// The pre-refactor `index_single` body.
fn prerefactor_index_single(
    emb_r: &ListEmbeddings,
    emb_s: &ListEmbeddings,
    k: usize,
    max_size: usize,
) -> CandidateSet {
    let mut index = FlatIndex::new(emb_r.dim, Metric::L2);
    index.add_batch(&emb_r.data);
    let mut scored = Vec::new();
    for s_id in 0..emb_s.len() as u32 {
        for (rank, h) in index.search(emb_s.row(s_id), k).into_iter().enumerate() {
            scored.push(Candidate { r: h.id, s: s_id, distance: h.distance, rank: rank as u32 });
        }
    }
    CandidateSet::from_scored(scored, max_size)
}

fn assert_identical(a: &CandidateSet, b: &CandidateSet, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: sizes differ");
    for (x, y) in a.pairs().iter().zip(b.pairs()) {
        assert_eq!(x, y, "{what}: candidate mismatch");
    }
}

#[test]
fn flat_backend_reproduces_prerefactor_committee_candidates() {
    let dim = 16;
    let mut rng = StdRng::seed_from_u64(42);
    let views_r: Vec<Vec<f32>> = (0..3).map(|_| random_view(80, dim, &mut rng)).collect();
    let views_s: Vec<Vec<f32>> = (0..3).map(|_| random_view(50, dim, &mut rng)).collect();

    let spec = IndexBackend::Flat.spec(7);
    let new = index_by_committee(&views_r, &views_s, dim, 3, 120, &spec);
    let old = prerefactor_index_by_committee(&views_r, &views_s, dim, 3, 120);
    assert_identical(&new, &old, "index_by_committee");
}

#[test]
fn flat_backend_reproduces_prerefactor_single_candidates() {
    let dim = 12;
    let mut rng = StdRng::seed_from_u64(43);
    let er = ListEmbeddings { dim, data: random_view(90, dim, &mut rng) };
    let es = ListEmbeddings { dim, data: random_view(60, dim, &mut rng) };

    let new = index_single(&er, &es, 4, 150, &IndexSpec::Flat);
    let old = prerefactor_index_single(&er, &es, 4, 150);
    assert_identical(&new, &old, "index_single");
}

#[test]
fn sharded_flat_reproduces_prerefactor_committee_candidates() {
    // Sharding an exact index is invisible to retrieval: the round-robin
    // split plus the k-way merge must reproduce the pre-refactor flat
    // candidate sets pair-for-pair, for any shard count.
    let dim = 16;
    let mut rng = StdRng::seed_from_u64(46);
    let views_r: Vec<Vec<f32>> = (0..3).map(|_| random_view(80, dim, &mut rng)).collect();
    let views_s: Vec<Vec<f32>> = (0..3).map(|_| random_view(50, dim, &mut rng)).collect();

    let old = prerefactor_index_by_committee(&views_r, &views_s, dim, 3, 120);
    for shards in [1usize, 2, 7] {
        let spec = IndexBackend::Flat.spec_sharded(7, shards);
        let new = index_by_committee(&views_r, &views_s, dim, 3, 120, &spec);
        assert_identical(&new, &old, &format!("index_by_committee sharded@{shards}"));
    }
}

#[test]
fn ivf_full_probe_matches_flat_candidate_keys() {
    let dim = 8;
    let mut rng = StdRng::seed_from_u64(44);
    let er = ListEmbeddings { dim, data: random_view(120, dim, &mut rng) };
    let es = ListEmbeddings { dim, data: random_view(40, dim, &mut rng) };

    let flat = index_single(&er, &es, 3, 10_000, &IndexSpec::Flat);
    let ivf_spec = IndexSpec::IvfFlat(IvfParams { nlist: 10, nprobe: 10, ..Default::default() });
    let ivf = index_single(&er, &es, 3, 10_000, &ivf_spec);
    assert_eq!(flat.key_set(), ivf.key_set(), "nprobe=nlist IVF must be exact");
}

#[test]
fn approximate_backends_overlap_flat_candidates() {
    let dim = 16;
    let mut rng = StdRng::seed_from_u64(45);
    let er = ListEmbeddings { dim, data: random_view(200, dim, &mut rng) };
    let es = ListEmbeddings { dim, data: random_view(80, dim, &mut rng) };

    let flat_keys = index_single(&er, &es, 5, 10_000, &IndexSpec::Flat).key_set();
    for backend in [
        IndexBackend::IvfFlat { nlist: 16, nprobe: 8 },
        IndexBackend::Pq { m: 8, nbits: 6 },
        IndexBackend::Hnsw { m: 16, ef_search: 64 },
    ] {
        let keys = index_single(&er, &es, 5, 10_000, &backend.spec(0)).key_set();
        let overlap = keys.intersection(&flat_keys).count() as f64 / flat_keys.len() as f64;
        assert!(
            overlap > 0.3,
            "{}: candidate overlap with exact retrieval {overlap:.3} too low",
            backend.label()
        );
    }
}
