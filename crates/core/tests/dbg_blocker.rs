//! Calibration probe (ignored): committee recall vs raw trunk recall on a
//! bench-scale dataset. Knobs: LRC, EPS, MP, NM.
use dial_core::*;
use dial_datasets::*;
use dial_tensor::*;
use dial_text::Vocab;
use dial_tplm::*;
use std::collections::HashSet;

#[test]
#[ignore]
fn blocker_probe() {
    let data = Benchmark::WalmartAmazon.generate(ScaleProfile::Bench, 1);
    let cfg = DialConfig::default();
    let mut store = ParamStore::new();
    let model = Tplm::new(cfg.tplm, &mut store);
    let matcher = Matcher::new(&mut store, &model);
    let vocab = Vocab::new(cfg.tplm.vocab_size as u32 - Vocab::NUM_SPECIAL);
    let corpus: Vec<Vec<u32>> = data
        .r
        .iter()
        .chain(data.s.iter())
        .map(|r| r.single_mode_ids(&vocab, cfg.tplm.max_len))
        .collect();
    pretrain_sgns(
        &mut store,
        model.token_embedding_param(),
        cfg.tplm.vocab_size,
        &corpus,
        PretrainConfig { epochs: 2, ..Default::default() },
    );
    let labeled = data.seed_labeled(40, 40, 0);
    // fine-tune matcher (to reproduce trunk distortion)
    matcher.train(&mut store, &model, &vocab, &data.r, &data.s, &labeled, &cfg, 0);

    let er = encode_list(&model, &store, &data.r, &vocab);
    let es = encode_list(&model, &store, &data.s, &vocab);
    let cand_cap = 3 * data.s.len();
    let raw = index_single(&er, &es, 3, cand_cap, &dial_ann::IndexSpec::Flat);
    println!("raw trunk recall {:.3}", rec(&data, &raw));

    // distance stats in trunk space
    let mut dup_d = vec![];
    let mut rand_d = vec![];
    for (i, &(r, sx)) in data.dups().iter().enumerate().take(60) {
        dup_d.push(dial_ann::sq_l2(er.row(r), es.row(sx)));
        rand_d.push(dial_ann::sq_l2(
            er.row((r as usize * 7 + i) as u32 % data.r.len() as u32),
            es.row((sx as usize * 13 + 3 * i) as u32 % data.s.len() as u32),
        ));
    }
    let m = |v: &Vec<f32>| v.iter().sum::<f32>() / v.len() as f32;
    println!("trunk dup d2 {:.2} random d2 {:.2}", m(&dup_d), m(&rand_d));
    let lrc: f32 = std::env::var("LRC").map(|v| v.parse().unwrap()).unwrap_or(1e-2);
    let eps: usize = std::env::var("EPS").map(|v| v.parse().unwrap()).unwrap_or(80);
    let maskp: f32 = std::env::var("MP").map(|v| v.parse().unwrap()).unwrap_or(0.5);
    let nmem: usize = std::env::var("NM").map(|v| v.parse().unwrap()).unwrap_or(3);
    let mut store2 = store.clone();
    let mut committee = Committee::new(&mut store2, nmem, cfg.tplm.d_model, maskp, 7);
    for chunk in 0..(eps / 10).max(1) {
        let ccfg = DialConfig { lr_committee: lrc, blocker_epochs: 10, ..cfg.clone() };
        let loss = committee.train(&mut store2, &er, &es, &labeled, &ccfg, 0);
        let vr = committee.embed_list(&store2, &er);
        let vs = committee.embed_list(&store2, &es);
        let ibc =
            index_by_committee(&vr, &vs, cfg.tplm.d_model, 3, cand_cap, &dial_ann::IndexSpec::Flat);
        let full = index_by_committee(
            &vr,
            &vs,
            cfg.tplm.d_model,
            3,
            usize::MAX,
            &dial_ann::IndexSpec::Flat,
        );
        println!("after {} epochs: IBC recall {:.3} union recall {:.3} union size {} loss {:.3} (lrc={lrc} mp={maskp} n={nmem})",
            (chunk + 1) * 10, rec(&data, &ibc), rec(&data, &full), full.len(), loss);
    }
    let _ = &mut committee;
}

fn rec(data: &EmDataset, c: &CandidateSet) -> f64 {
    let keys: HashSet<(u32, u32)> = c.key_set();
    blocker_recall(data, &keys)
}
